package engine

import (
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/sqlparse"
)

// twoEngines opens a compiled-default engine and a tree-walk baseline and
// applies the same setup script to both.
func twoEngines(t *testing.T, d dialect.Dialect, setup []string) (compiled, interpreted *Engine) {
	t.Helper()
	compiled = Open(d)
	interpreted = Open(d, WithoutCompiledEval())
	for _, e := range []*Engine{compiled, interpreted} {
		for _, s := range setup {
			if _, err := e.Exec(s); err != nil {
				t.Fatalf("setup %q: %v", s, err)
			}
		}
	}
	return compiled, interpreted
}

// TestAmbiguousColumnDistinctError is the regression test for the
// joinedEnv.find conflation bug: an unqualified column matching two FROM
// sources must report "ambiguous column name", not "no such column" — in
// the compiled path (bind time) and the tree-walk fallback (lookup time).
func TestAmbiguousColumnDistinctError(t *testing.T) {
	setup := []string{
		"CREATE TABLE a(x INT, only_a INT)",
		"CREATE TABLE b(x INT)",
		"INSERT INTO a VALUES (1, 10)",
		"INSERT INTO b VALUES (2)",
	}
	compiled, interpreted := twoEngines(t, dialect.SQLite, setup)
	for name, e := range map[string]*Engine{"compiled": compiled, "interpreted": interpreted} {
		_, err := e.Exec("SELECT x FROM a, b")
		if err == nil || !strings.Contains(err.Error(), "ambiguous column name: x") {
			t.Errorf("%s: ambiguous select err = %v, want ambiguous column name", name, err)
		}
		_, err = e.Exec("SELECT nope FROM a, b")
		if err == nil || !strings.Contains(err.Error(), "no such column") ||
			strings.Contains(err.Error(), "ambiguous") {
			t.Errorf("%s: missing select err = %v, want no such column", name, err)
		}
		// A qualified reference to the shared name stays unambiguous.
		res, err := e.Exec("SELECT a.x FROM a, b")
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int64() != 1 {
			t.Errorf("%s: qualified select = %v, %v", name, res, err)
		}
		// Unique unqualified names keep resolving.
		res, err = e.Exec("SELECT only_a FROM a, b")
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int64() != 10 {
			t.Errorf("%s: unique unqualified select = %v, %v", name, res, err)
		}
	}
}

// TestProgramCacheInvalidation re-executes the same statement AST across a
// schema change: cached slot bindings must not survive DDL.
func TestProgramCacheInvalidation(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec := func(s string) {
		t.Helper()
		if _, err := e.Exec(s); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
	mustExec("CREATE TABLE t(a INT, b INT)")
	mustExec("INSERT INTO t VALUES (1, 2)")
	sel, err := sqlparse.ParseOne("SELECT a FROM t WHERE b = 2", dialect.SQLite)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second run hits the program cache
		res, err := e.ExecStmt(sel)
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int64() != 1 {
			t.Fatalf("run %d: %v, %v", i, res, err)
		}
	}
	// Recreate the table with the column order swapped. Stale slots would
	// read a where b lives now.
	mustExec("DROP TABLE t")
	mustExec("CREATE TABLE t(b INT, a INT)")
	mustExec("INSERT INTO t VALUES (2, 99)")
	res, err := e.ExecStmt(sel)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int64() != 99 {
		t.Fatalf("after DDL: rows=%v err=%v, want [99]", res, err)
	}
}

// TestCompiledMatchesInterpretedQueries runs a battery of tricky SELECT
// shapes — joins with NULL extension, grouping, HAVING, aggregates over
// expressions, views, CASE, collations — on a compiled engine and a
// tree-walk engine and requires identical results or identical errors.
func TestCompiledMatchesInterpretedQueries(t *testing.T) {
	setup := []string{
		"CREATE TABLE t0(c0 INT, c1 TEXT COLLATE NOCASE, c2 REAL)",
		"CREATE TABLE t1(k INT, v TEXT)",
		"INSERT INTO t0 VALUES (1, 'a', 0.5), (2, 'B', NULL), (NULL, 'abc', 2.5), (2, 'b', 1.0)",
		"INSERT INTO t1 VALUES (1, 'x'), (3, NULL)",
		"CREATE VIEW w AS SELECT c0, c1 FROM t0 WHERE c0 IS NOT NULL",
	}
	queries := []string{
		"SELECT * FROM t0 WHERE c0 = 2",
		"SELECT c0 + c2, c1 || 'z' FROM t0 WHERE c1 = 'B'",
		"SELECT t0.c0, t1.v FROM t0 LEFT JOIN t1 ON t0.c0 = t1.k",
		"SELECT c0, COUNT(*), SUM(c2) FROM t0 GROUP BY c0",
		"SELECT c1, MAX(c0) FROM t0 GROUP BY c1 HAVING MAX(c0) > 1",
		"SELECT CASE WHEN c0 IS NULL THEN 'n' ELSE c1 END FROM t0",
		"SELECT DISTINCT c1 FROM t0",
		"SELECT * FROM w WHERE c1 LIKE 'A%'",
		"SELECT c0 FROM t0 WHERE c0 BETWEEN 1 AND 2 ORDER BY c0",
		"SELECT c0 FROM t0 WHERE c0 IN (2, NULL, 5)",
		"SELECT c0 FROM t0 WHERE c1 = 'A' COLLATE BINARY",
		"SELECT ABS(c0 - 3) FROM t0 WHERE c0 NOT NULL",
		"SELECT COUNT(c2 * 2) FROM t0",
		"SELECT 1 + 2 * 3",
		"SELECT t0.c0 FROM t0, t1 WHERE t0.c0 = t1.k",
	}
	for _, d := range dialect.All {
		if d != dialect.SQLite {
			continue // the setup script is SQLite-flavoured; other dialects run via the campaign suites
		}
		compiled, interpreted := twoEngines(t, d, setup)
		for _, q := range queries {
			cr, cerr := compiled.Exec(q)
			ir, ierr := interpreted.Exec(q)
			if (cerr == nil) != (ierr == nil) {
				t.Fatalf("%q: compiled err=%v interpreted err=%v", q, cerr, ierr)
			}
			if cerr != nil {
				if cerr.Error() != ierr.Error() {
					t.Fatalf("%q: error text diverged: %q vs %q", q, cerr, ierr)
				}
				continue
			}
			if len(cr.Rows) != len(ir.Rows) {
				t.Fatalf("%q: %d rows compiled vs %d interpreted", q, len(cr.Rows), len(ir.Rows))
			}
			for i := range cr.Rows {
				for j := range cr.Rows[i] {
					a, b := cr.Rows[i][j], ir.Rows[i][j]
					if a.Kind() != b.Kind() || a.String() != b.String() {
						t.Fatalf("%q: row %d col %d: %s vs %s", q, i, j, a, b)
					}
				}
			}
		}
	}
}
