package engine

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/sqlval"
	"repro/internal/storage"
	"repro/internal/xerr"
)

// PathKind classifies the access path the planner chose for one relation.
type PathKind uint8

// Access path kinds.
const (
	// PathFullScan reads every heap row.
	PathFullScan PathKind = iota
	// PathIndexEq probes an index for entries equal to a key.
	PathIndexEq
	// PathIndexRange walks a contiguous index span between two bounds.
	PathIndexRange
	// PathPartialIndex enumerates a partial index whose predicate the
	// WHERE clause implies.
	PathPartialIndex
)

// String names the path kind in EXPLAIN output.
func (k PathKind) String() string {
	switch k {
	case PathIndexEq:
		return "index-eq"
	case PathIndexRange:
		return "index-range"
	case PathPartialIndex:
		return "partial-index"
	default:
		return "full-scan"
	}
}

// AccessPath is one relation's planned access, exposed through Plan() and
// the EXPLAIN statement.
type AccessPath struct {
	Table  string
	Kind   PathKind
	Index  string // empty for full scans
	Column string // driving column for eq/range paths
	// EqKey is the probe key of an index-eq path.
	EqKey []sqlval.Value
	// Lo/Hi bound an index-range path; nil ends are open.
	Lo, Hi *storage.Bound
	// Cost is the planner's row-count cost estimate; EstRows the number of
	// candidate rows the path visits.
	Cost    float64
	EstRows int
	// Join names the strategy joining this relation to the ones before it
	// ("HASH", "INDEX LOOKUP", "NESTED LOOP"); empty for the driving
	// relation and single-source queries. JoinCond renders the equality
	// keys (plus the probed index for lookups); JoinCost is the strategy's
	// estimated cost at planner row counts. The executor re-runs the same
	// choice with actual intermediate sizes — and, on Postgres, a runtime
	// value-class prescan — so a level shown as HASH here may still fall
	// back to the nested loop.
	Join     string
	JoinCond string
	JoinCost float64
	// Group/Order surface the statement-level aggregation and ordering
	// strategies on the first access path: "GROUP USING HASH (keys)" when
	// the streaming hash-aggregation executor will group the result, and
	// "ORDER USING TOP-K (k)" when ORDER BY + a constant LIMIT route
	// through the bounded-heap selection (which still falls back to a full
	// sort at runtime when k reaches the actual row count).
	Group string
	Order string
}

// Detail renders the path in EXPLAIN QUERY PLAN style.
func (p AccessPath) Detail() string {
	s := p.scanDetail()
	if p.Join != "" {
		s += " JOIN USING " + p.Join
		if p.JoinCond != "" {
			s += " (" + p.JoinCond + ")"
		}
		s += fmt.Sprintf(" (cost=%.1f)", p.JoinCost)
	}
	if p.Group != "" {
		s += " " + p.Group
	}
	if p.Order != "" {
		s += " " + p.Order
	}
	return s
}

func (p AccessPath) scanDetail() string {
	switch p.Kind {
	case PathIndexEq:
		return fmt.Sprintf("SEARCH %s USING INDEX %s (%s=?) (cost=%.1f rows=%d)",
			p.Table, p.Index, p.Column, p.Cost, p.EstRows)
	case PathIndexRange:
		var conds []string
		if p.Lo != nil {
			op := ">"
			if p.Lo.Inclusive {
				op = ">="
			}
			conds = append(conds, p.Column+op+"?")
		}
		if p.Hi != nil {
			op := "<"
			if p.Hi.Inclusive {
				op = "<="
			}
			conds = append(conds, p.Column+op+"?")
		}
		return fmt.Sprintf("SEARCH %s USING INDEX %s (%s) (cost=%.1f rows=%d)",
			p.Table, p.Index, strings.Join(conds, " AND "), p.Cost, p.EstRows)
	case PathPartialIndex:
		return fmt.Sprintf("SCAN %s USING PARTIAL INDEX %s (cost=%.1f rows=%d)",
			p.Table, p.Index, p.Cost, p.EstRows)
	default:
		return fmt.Sprintf("SCAN %s (cost=%.1f rows=%d)", p.Table, p.Cost, p.EstRows)
	}
}

// sargPred is one sargable predicate extracted from a WHERE conjunct:
// a comparison between a bare column and a non-NULL literal.
type sargPred struct {
	column  string
	coll    sqlval.Collation
	hasColl bool // a COLLATE clause fixed the comparison collation
	op      sqlast.BinOp
	val     sqlval.Value
}

// stripOneCollate unwraps a single COLLATE layer, reporting the collation.
func stripOneCollate(e sqlast.Expr) (sqlast.Expr, sqlval.Collation, bool) {
	if c, ok := e.(*sqlast.Collate); ok {
		return c.X, c.Coll, true
	}
	return e, sqlval.CollBinary, false
}

// flipOp mirrors a comparison operator for swapped operands.
func flipOp(op sqlast.BinOp) sqlast.BinOp {
	switch op {
	case sqlast.OpLt:
		return sqlast.OpGt
	case sqlast.OpLe:
		return sqlast.OpGe
	case sqlast.OpGt:
		return sqlast.OpLt
	case sqlast.OpGe:
		return sqlast.OpLe
	default:
		return op // Eq / Is / NullSafeEq are symmetric
	}
}

// sargable extracts the sargable predicates of a WHERE clause's top-level
// AND conjuncts for a single-relation query. relName/tableName resolve
// qualified column references.
func (e *Engine) sargable(where sqlast.Expr, relName, tableName string) []sargPred {
	if where == nil {
		return nil
	}
	sameRel := func(qual string) bool {
		return qual == "" || strings.EqualFold(qual, relName) || strings.EqualFold(qual, tableName)
	}
	var out []sargPred
	for _, conj := range conjuncts(where) {
		if bw, ok := conj.(*sqlast.Between); ok && !bw.Not {
			x, coll, hasColl := stripOneCollate(bw.X)
			cr, isCol := x.(*sqlast.ColumnRef)
			if !isCol || cr.MaybeString || !sameRel(cr.Table) {
				continue
			}
			lo, okLo := bw.Lo.(*sqlast.Literal)
			hi, okHi := bw.Hi.(*sqlast.Literal)
			if okLo && !lo.Val.IsNull() {
				out = append(out, sargPred{column: cr.Column, coll: coll, hasColl: hasColl, op: sqlast.OpGe, val: lo.Val})
			}
			if okHi && !hi.Val.IsNull() {
				out = append(out, sargPred{column: cr.Column, coll: coll, hasColl: hasColl, op: sqlast.OpLe, val: hi.Val})
			}
			continue
		}
		b, ok := conj.(*sqlast.Binary)
		if !ok {
			continue
		}
		switch b.Op {
		case sqlast.OpEq, sqlast.OpIs, sqlast.OpNullSafeEq,
			sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
		default:
			continue
		}
		// Postgres IS compares truthiness, not values — never sargable.
		if b.Op == sqlast.OpIs && e.d == dialect.Postgres {
			continue
		}
		l, lColl, lHas := stripOneCollate(b.L)
		r, rColl, rHas := stripOneCollate(b.R)
		op := b.Op
		var colRef *sqlast.ColumnRef
		var lit *sqlast.Literal
		if cr, isCol := l.(*sqlast.ColumnRef); isCol {
			if lv, isLit := r.(*sqlast.Literal); isLit {
				colRef, lit = cr, lv
			}
		}
		if colRef == nil {
			if cr, isCol := r.(*sqlast.ColumnRef); isCol {
				if lv, isLit := l.(*sqlast.Literal); isLit {
					colRef, lit = cr, lv
					op = flipOp(op)
				}
			}
		}
		if colRef == nil || colRef.MaybeString || !sameRel(colRef.Table) || lit.Val.IsNull() {
			continue
		}
		// Mirror eval.comparisonCollation: explicit COLLATE wins (left
		// operand first), else the column's declared collation applies
		// (resolved later against the schema).
		coll, hasColl := sqlval.CollBinary, false
		switch {
		case lHas:
			coll, hasColl = lColl, true
		case rHas:
			coll, hasColl = rColl, true
		}
		out = append(out, sargPred{column: colRef.Column, coll: coll, hasColl: hasColl, op: op, val: lit.Val})
	}
	return out
}

// predCollation resolves a predicate's effective comparison collation the
// way the evaluator does: explicit COLLATE, else the column's declared
// collation, else the dialect default.
func (e *Engine) predCollation(p sargPred, col *schema.Column) sqlval.Collation {
	if p.hasColl {
		return p.coll
	}
	if col.Collate != sqlval.CollBinary {
		return col.Collate
	}
	if e.d == dialect.MySQL {
		return sqlval.CollNoCase
	}
	return sqlval.CollBinary
}

// chooseAccessPath runs simple row-count costing over the table's indexes
// against the sargable predicates and returns the cheapest access path.
// It returns nil when a full scan wins (or nothing else is eligible).
func (e *Engine) chooseAccessPath(n *sqlast.Select, t *schema.Table, relName string) *AccessPath {
	td := e.data[lower(t.Name)]
	if td == nil {
		return nil
	}
	rows := td.Len()
	preds := e.sargable(n.Where, relName, t.Name)
	if len(preds) == 0 {
		return nil
	}
	full := AccessPath{Table: relName, Kind: PathFullScan, Cost: float64(rows), EstRows: rows}
	best := full
	probe := 0.5 * math.Log2(float64(rows)+1)

	for _, ix := range e.cat.IndexesOn(t.Name) {
		if ix.Where != nil {
			continue
		}
		lead, bare := ix.LeadingColumn()
		if !bare {
			continue
		}
		ci := t.ColumnIndex(lead)
		if ci < 0 {
			continue
		}
		ixd := e.idx[lower(ix.Name)]
		if ixd == nil {
			continue
		}
		col := &t.Columns[ci]

		// Collect this column's predicates: an equality probe beats range
		// bounds; otherwise combine the first lower and upper bound.
		var eq *sargPred
		var lo, hi *storage.Bound
		for i := range preds {
			p := &preds[i]
			if !strings.EqualFold(p.column, lead) {
				continue
			}
			if !e.indexUsable(p, col, ix, ixd) {
				continue
			}
			switch p.op {
			case sqlast.OpEq, sqlast.OpIs, sqlast.OpNullSafeEq:
				if eq == nil {
					eq = p
				}
			case sqlast.OpGt, sqlast.OpGe:
				if lo == nil {
					lo = &storage.Bound{Key: p.val, Inclusive: p.op == sqlast.OpGe}
				}
			case sqlast.OpLt, sqlast.OpLe:
				if hi == nil {
					hi = &storage.Bound{Key: p.val, Inclusive: p.op == sqlast.OpLe}
				}
			}
		}
		switch {
		case eq != nil:
			key := eq.val
			if e.d == dialect.SQLite {
				// SQLite stores values affinity-converted, so the probe key
				// must be converted the same way.
				key = sqlval.ApplyAffinity(key, col.Affinity)
			}
			est := ixd.PrefixCount([]sqlval.Value{key})
			// Point probes fetch rows by rowid; weight them below
			// sequential scan rows so selective lookups always win.
			cost := probe + 0.5*float64(est)
			if cost < best.Cost {
				best = AccessPath{
					Table: relName, Kind: PathIndexEq, Index: ix.Name,
					Column: lead, EqKey: []sqlval.Value{key},
					Cost: cost, EstRows: est,
				}
			}
		case lo != nil || hi != nil:
			est := ixd.RangeCount(lo, hi)
			// Range spans read index entries plus fetched rows: weight them
			// like heap rows, so an unselective span loses to the full scan
			// by exactly the probe cost.
			cost := probe + float64(est)
			if cost < best.Cost {
				best = AccessPath{
					Table: relName, Kind: PathIndexRange, Index: ix.Name,
					Column: lead, Lo: lo, Hi: hi,
					Cost: cost, EstRows: est,
				}
			}
		}
	}
	if best.Kind == PathFullScan {
		return nil
	}
	return &best
}

// indexUsable reports whether an index can soundly serve a predicate in
// this dialect: the candidate set it yields must be a superset of the rows
// the residual WHERE filter would accept.
func (e *Engine) indexUsable(p *sargPred, col *schema.Column, ix *schema.Index, ixd *storage.IndexData) bool {
	isRange := p.op == sqlast.OpLt || p.op == sqlast.OpLe || p.op == sqlast.OpGt || p.op == sqlast.OpGe
	declared := ix.Parts[0].Collate
	// Range scans need the physical order ascending to map bounds onto a
	// contiguous span.
	if isRange && ix.Parts[0].Desc {
		return false
	}
	switch e.d {
	case dialect.SQLite:
		qc := e.predCollation(*p, col)
		if isRange {
			// Ordering must agree exactly with the comparison collation.
			return declared == qc
		}
		// Equality tolerates a coarser index collation: its equality
		// classes then contain the query's. Fault site
		// (sqlite.planner-collation-confusion): the check is skipped and a
		// differently-ordered index serves the lookup.
		if e.fs.Has(faults.PlannerCollationConfusion) {
			return true
		}
		return declared == qc || qc == sqlval.CollBinary
	case dialect.MySQL:
		// MySQL coerces text to numbers in comparisons, so raw index order
		// only agrees with comparison order when every key is numeric.
		return numericKind(p.val) && !ix.Parts[0].Desc && ixd.NumericLeadingOnly()
	default: // Postgres: strict typing, per-class comparisons
		if ix.Parts[0].Desc {
			return false
		}
		if numericKind(p.val) {
			return ixd.NumericLeadingOnly()
		}
		if p.val.Kind() == sqlval.KText {
			return e.predCollation(*p, col) == declared && ixd.TextLeadingOnly()
		}
		return false
	}
}

func numericKind(v sqlval.Value) bool {
	switch v.Kind() {
	case sqlval.KInt, sqlval.KUint, sqlval.KReal, sqlval.KBool:
		return true
	}
	return false
}

// executePath materializes the candidate rowids of a chosen index path.
func (e *Engine) executePath(p *AccessPath) []int64 {
	ixd := e.idx[lower(p.Index)]
	if ixd == nil {
		return nil
	}
	switch p.Kind {
	case PathIndexEq:
		return ixd.EqualPrefix(p.EqKey)
	case PathIndexRange:
		lo, hi := p.Lo, p.Hi
		// Fault site (sqlite.range-scan-boundary): the seek target is off
		// by one entry — inclusive bounds behave as exclusive, dropping
		// rows that sit exactly on a boundary.
		if e.d == dialect.SQLite && e.fs.Has(faults.RangeScanBoundary) {
			if lo != nil && lo.Inclusive {
				lo = &storage.Bound{Key: lo.Key}
			}
			if hi != nil && hi.Inclusive {
				hi = &storage.Bound{Key: hi.Key}
			}
		}
		return ixd.Range(lo, hi)
	}
	return nil
}

// Plan reports the access path the planner would choose for each FROM
// source of a SELECT, without executing it — the programmatic form of the
// EXPLAIN statement.
func (e *Engine) Plan(sel *sqlast.Select) ([]AccessPath, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.planSelect(sel)
}

// PlanSQL parses src as a single SELECT and returns its plan.
func (e *Engine) PlanSQL(src string) ([]AccessPath, error) {
	st, err := sqlparse.ParseOne(src, e.d)
	if err != nil {
		return nil, xerr.New(xerr.CodeSyntax, "%v", err)
	}
	sel, ok := st.(*sqlast.Select)
	if !ok {
		return nil, xerr.New(xerr.CodeUnsupported, "Plan supports SELECT, got %s", st.Kind())
	}
	return e.Plan(sel)
}

// planSelect computes access paths without taking the engine lock (the
// EXPLAIN executor already holds it).
func (e *Engine) planSelect(sel *sqlast.Select) ([]AccessPath, error) {
	var refs []sqlast.TableRef
	refs = append(refs, sel.From...)
	for _, j := range sel.Joins {
		refs = append(refs, j.Table)
	}
	var out []AccessPath
	for _, tr := range refs {
		t, ok := e.cat.Table(tr.Name)
		if !ok {
			return nil, xerr.New(xerr.CodeNoObject, "no such table: %s", tr.Name)
		}
		name := tr.Name
		if tr.Alias != "" {
			name = tr.Alias
		}
		rows := 0
		if td := e.data[lower(t.Name)]; td != nil {
			rows = td.Len()
		}
		full := AccessPath{Table: name, Kind: PathFullScan, Cost: float64(rows), EstRows: rows}
		// Index selection applies only to single-source scans of plannable
		// base tables, matching the executor.
		if len(refs) != 1 || !e.plannable(t) {
			out = append(out, full)
			continue
		}
		if ix := e.impliedPartialIndex(sel.Where, t.Name); ix != nil {
			est := e.idxLen(ix.Name)
			out = append(out, AccessPath{
				Table: name, Kind: PathPartialIndex, Index: ix.Name,
				Cost: float64(est), EstRows: est,
			})
			continue
		}
		if p := e.chooseAccessPath(sel, t, name); p != nil {
			out = append(out, *p)
		} else {
			out = append(out, full)
		}
	}
	if len(out) == 0 {
		// FROM-less SELECT: a single constant row.
		out = append(out, AccessPath{Table: "(no table)", Kind: PathFullScan})
	}
	if len(refs) > 1 {
		e.annotateJoins(sel, out)
	}
	e.annotateAggOrder(sel, out)
	return out, nil
}

// annotateAggOrder records the aggregation and ordering strategies on the
// statement's first access path, mirroring the executor's dispatch in
// project/orderByTopK (agg.go).
func (e *Engine) annotateAggOrder(sel *sqlast.Select, out []AccessPath) {
	if e.noHashAgg || len(out) == 0 {
		return
	}
	if len(sel.GroupBy) > 0 {
		keys := make([]string, len(sel.GroupBy))
		for i, gx := range sel.GroupBy {
			keys[i] = sqlast.ExprSQL(gx, e.d)
		}
		out[0].Group = "GROUP USING HASH (" + strings.Join(keys, ", ") + ")"
	}
	if len(sel.OrderBy) > 0 && sel.Limit != nil {
		if lv, err := e.constEval(sel.Limit); err == nil && lv.Kind() == sqlval.KInt && lv.Int64() >= 0 {
			k := lv.Int64()
			ok := true
			if sel.Offset != nil {
				ov, err := e.constEval(sel.Offset)
				if err != nil || ov.Kind() != sqlval.KInt || ov.Int64() < 0 {
					ok = false
				} else {
					k += ov.Int64()
				}
			}
			if ok && k > 0 {
				out[0].Order = fmt.Sprintf("ORDER USING TOP-K (%d)", k)
			}
		}
	}
}

// annotateJoins runs the executor's per-level join analysis and strategy
// choice over planner row estimates and records the result on each joined
// relation's access path. Views contribute their declared columns but no
// rows (EXPLAIN never executes a view), so their row estimate is zero.
func (e *Engine) annotateJoins(sel *sqlast.Select, out []AccessPath) {
	rels, joins := e.headerRelations(sel)
	if rels == nil || len(rels) != len(out) {
		return
	}
	crossOK := e.crossPrefilterOK(sel, rels)
	estL := float64(out[0].EstRows)
	for i := 1; i < len(rels); i++ {
		r := float64(out[i].EstRows)
		a := e.analyzeJoin(sel, rels, joins[i-1], i, crossOK)
		strat, cost := JoinNested, joinCost(JoinNested, estL, r)
		if a != nil {
			strat, cost = chooseJoinStrategy(a, estL, r)
		}
		out[i].Join = strat.String()
		out[i].JoinCond = renderJoinKeys(a, rels, i, strat)
		out[i].JoinCost = cost
		// Intermediate-size estimate: equi-joins keep at most one match per
		// key on the dominant side; cross/theta levels multiply.
		if a != nil {
			estL = math.Max(estL, r)
		} else {
			estL *= r
		}
	}
}

// headerRelations builds column-metadata-only relations for planning: same
// shape the executor resolves, minus row materialization. Returns nil when
// a source does not resolve (execution will raise the error instead).
func (e *Engine) headerRelations(sel *sqlast.Select) ([]*relation, []joinInfo) {
	var rels []*relation
	var joins []joinInfo
	add := func(tr sqlast.TableRef) bool {
		t, ok := e.cat.Table(tr.Name)
		if !ok {
			return false
		}
		name := tr.Name
		if tr.Alias != "" {
			name = tr.Alias
		}
		table := t.Name
		if t.IsView {
			table = ""
		}
		rels = append(rels, &relation{name: name, table: table, columns: t.Columns, engine: t.Engine})
		return true
	}
	for _, tr := range sel.From {
		if !add(tr) {
			return nil, nil
		}
		if len(rels) > 1 {
			joins = append(joins, joinInfo{kind: sqlast.JoinCross})
		}
	}
	for _, jc := range sel.Joins {
		if !add(jc.Table) {
			return nil, nil
		}
		joins = append(joins, joinInfo{kind: jc.Kind, on: jc.On})
	}
	return rels, joins
}

// renderJoinKeys formats a join analysis's equality keys for EXPLAIN.
func renderJoinKeys(a *joinAnalysis, rels []*relation, level int, strat JoinStrategy) string {
	if a == nil {
		return ""
	}
	key := func(k equiKey) string {
		return fmt.Sprintf("%s.%s = %s.%s",
			rels[k.lRel].name, rels[k.lRel].columns[k.lCol].Name,
			rels[level].name, rels[level].columns[k.rCol].Name)
	}
	if strat == JoinIndexLookup && a.idx != nil {
		return "INDEX " + a.idx.Name + ": " + key(a.idxKey)
	}
	parts := make([]string, 0, len(a.keys))
	for _, k := range a.keys {
		parts = append(parts, key(k))
	}
	return strings.Join(parts, " AND ")
}

// plannable reports whether index access paths may serve a table: views
// and inheritance parents (whose scans include child rows absent from the
// parent's indexes) always take full scans.
func (e *Engine) plannable(t *schema.Table) bool {
	return !e.noPlanner && !t.IsView && len(t.Children) == 0
}

// impliedPartialIndex returns the first partial index whose predicate the
// WHERE clause implies.
func (e *Engine) impliedPartialIndex(where sqlast.Expr, table string) *schema.Index {
	if where == nil {
		return nil
	}
	for _, ix := range e.cat.IndexesOn(table) {
		if ix.Where == nil {
			continue
		}
		if e.predicateImplies(where, ix.Where) {
			return ix
		}
	}
	return nil
}

func (e *Engine) idxLen(name string) int {
	if ixd := e.idx[lower(name)]; ixd != nil {
		return ixd.Len()
	}
	return 0
}

// execExplain executes EXPLAIN: one detail row per planned FROM source.
func (e *Engine) execExplain(n *sqlast.Explain) (*Result, error) {
	e.cov.hit("dql.explain")
	var sels []*sqlast.Select
	switch t := n.Target.(type) {
	case *sqlast.Select:
		sels = []*sqlast.Select{t}
	case *sqlast.Compound:
		sels = t.Selects
	default:
		return nil, xerr.New(xerr.CodeUnsupported, "EXPLAIN supports SELECT, got %s", n.Target.Kind())
	}
	res := &Result{Columns: []string{"detail"}}
	for _, sel := range sels {
		paths, err := e.planSelect(sel)
		if err != nil {
			return nil, err
		}
		for _, p := range paths {
			res.Rows = append(res.Rows, []sqlval.Value{sqlval.Text(p.Detail())})
		}
	}
	return res, nil
}
