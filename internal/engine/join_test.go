package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dialect"
)

// joinTestSchema builds three tables with overlapping key domains,
// duplicate keys, NULLs, and case/trailing-space text variants — the
// shapes hash-key normalization has to get right.
func joinTestSchema(t *testing.T, e *Engine) {
	t.Helper()
	execAll(t, e,
		"CREATE TABLE j0(k INT, s TEXT, v INT)",
		"CREATE TABLE j1(k INT, s TEXT, v INT)",
		"CREATE TABLE j2(k INT, s TEXT)",
		"INSERT INTO j0 VALUES (1, 'a', 10), (2, 'B', 20), (2, 'b ', 21), (3, NULL, 30), (NULL, 'c', 40)",
		"INSERT INTO j1 VALUES (1, 'A', 100), (2, 'b', 200), (4, 'd', 400), (NULL, NULL, 500), (2, 'a', 201)",
		"INSERT INTO j2 VALUES (1, 'a'), (3, 'C'), (5, 'e')",
	)
}

// runQuery returns a canonical string form of a query result (or its
// error) for byte-identical comparison across engines.
func runQuery(e *Engine, sql string) string {
	res, err := e.Exec(sql)
	if err != nil {
		return "error: " + err.Error()
	}
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, "|"))
	b.WriteString("\n")
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteString("|")
			}
			b.WriteString(v.Literal())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// assertJoinEquivalent runs the same query on the hash-enabled and
// nested-only engines and requires byte-identical results (joins are
// unordered: both paths must still agree on order because the nested
// loop's combo order is the specified one and the hash path preserves it).
func assertJoinEquivalent(t *testing.T, on, off *Engine, sql string) {
	t.Helper()
	got, want := runQuery(on, sql), runQuery(off, sql)
	if got != want {
		t.Errorf("hash/nested divergence on %q:\nhash path:\n%s\nnested loop:\n%s", sql, got, want)
	}
}

// TestHashVsNestedEquivalence is the differential oracle for the join
// strategies: across all three dialects, a spread of handcrafted and
// randomly generated join queries must return byte-identical results with
// hash/index joins enabled and with WithoutHashJoin pinning every level
// to the nested loop.
func TestHashVsNestedEquivalence(t *testing.T) {
	handcrafted := []string{
		// Pure equi inner joins, single and multi key.
		"SELECT * FROM j0 JOIN j1 ON j0.k = j1.k",
		"SELECT * FROM j0 JOIN j1 ON j0.k = j1.k AND j0.s = j1.s",
		"SELECT * FROM j0 JOIN j1 ON j1.k = j0.k",
		// Equi keys plus a non-key residual conjunct.
		"SELECT * FROM j0 JOIN j1 ON j0.k = j1.k AND j0.v < j1.v",
		// LEFT JOIN: unmatched left rows survive with NULLs.
		"SELECT * FROM j0 LEFT JOIN j1 ON j0.k = j1.k",
		"SELECT * FROM j0 LEFT JOIN j1 ON j0.k = j1.k AND j0.s = j1.s",
		"SELECT * FROM j0 LEFT JOIN j1 ON j0.k = j1.k WHERE j1.v IS NULL",
		// Three-way chains, mixed kinds.
		"SELECT * FROM j0 JOIN j1 ON j0.k = j1.k JOIN j2 ON j1.k = j2.k",
		"SELECT * FROM j0 LEFT JOIN j1 ON j0.k = j1.k LEFT JOIN j2 ON j0.k = j2.k",
		"SELECT * FROM j0 JOIN j1 ON j0.k = j1.k LEFT JOIN j2 ON j1.s = j2.s",
		// Implicit cross join with WHERE-derived keys.
		"SELECT * FROM j0, j1 WHERE j0.k = j1.k",
		"SELECT * FROM j0, j1 WHERE j0.k = j1.k AND j0.v < j1.v",
		"SELECT * FROM j0, j1, j2 WHERE j0.k = j1.k AND j1.k = j2.k",
		// Theta-only ON: no keys, nested loop on both engines.
		"SELECT * FROM j0 JOIN j1 ON j0.k < j1.k",
		// Aggregation and DISTINCT over joined rows.
		"SELECT COUNT(*), MIN(j1.v) FROM j0 JOIN j1 ON j0.k = j1.k",
		"SELECT DISTINCT j0.k FROM j0 JOIN j1 ON j0.k = j1.k",
	}
	for _, d := range dialect.All {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			on := Open(d)
			off := Open(d, WithoutHashJoin())
			joinTestSchema(t, on)
			joinTestSchema(t, off)
			for _, q := range handcrafted {
				assertJoinEquivalent(t, on, off, q)
			}
			rnd := rand.New(rand.NewSource(8))
			for i := 0; i < 150; i++ {
				assertJoinEquivalent(t, on, off, randomJoinQuery(rnd))
			}
		})
	}
}

// randomJoinQuery generates a two- or three-way join whose ON mixes equi
// keys with residual comparisons, occasionally LEFT, occasionally via an
// implicit cross join plus WHERE.
func randomJoinQuery(rnd *rand.Rand) string {
	tables := []string{"j0", "j1", "j2"}
	rnd.Shuffle(len(tables), func(i, j int) { tables[i], tables[j] = tables[j], tables[i] })
	nway := 2 + rnd.Intn(2)
	cols := func(tbl string) []string {
		if tbl == "j2" {
			return []string{"k", "s"}
		}
		return []string{"k", "s", "v"}
	}
	cond := func(a, b string) string {
		ca := cols(a)[rnd.Intn(len(cols(a)))]
		cb := cols(b)[rnd.Intn(len(cols(b)))]
		op := []string{"=", "=", "=", "<", "<=", "<>"}[rnd.Intn(6)]
		return fmt.Sprintf("%s.%s %s %s.%s", a, ca, op, b, cb)
	}
	onClause := func(a, b string) string {
		c := cond(a, b)
		for rnd.Intn(3) == 0 {
			c += " AND " + cond(a, b)
		}
		return c
	}
	if rnd.Intn(4) == 0 { // implicit cross join + WHERE
		from := strings.Join(tables[:nway], ", ")
		var conds []string
		for i := 1; i < nway; i++ {
			conds = append(conds, onClause(tables[i-1], tables[i]))
		}
		return fmt.Sprintf("SELECT * FROM %s WHERE %s", from, strings.Join(conds, " AND "))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT * FROM %s", tables[0])
	for i := 1; i < nway; i++ {
		kind := "JOIN"
		if rnd.Intn(3) == 0 {
			kind = "LEFT JOIN"
		}
		fmt.Fprintf(&b, " %s %s ON %s", kind, tables[i], onClause(tables[i-1], tables[i]))
	}
	return b.String()
}

// TestHashJoinEdgeCases pins the tricky key-normalization rows: NULL keys
// never match (but LEFT-preserve), cross-collation ON folds case, and
// affinity-mismatched key columns still compare numerically.
func TestHashJoinEdgeCases(t *testing.T) {
	t.Run("null keys", func(t *testing.T) {
		for _, d := range dialect.All {
			e := Open(d)
			execAll(t, e,
				"CREATE TABLE a(k INT)", "CREATE TABLE b(k INT)",
				"INSERT INTO a VALUES (1), (NULL), (2)",
				"INSERT INTO b VALUES (NULL), (1), (NULL)",
			)
			if n := rowCount(t, e, "SELECT * FROM a JOIN b ON a.k = b.k"); n != 1 {
				t.Errorf("%s: NULL keys joined: got %d rows, want 1", d, n)
			}
			if n := rowCount(t, e, "SELECT * FROM a LEFT JOIN b ON a.k = b.k"); n != 3 {
				t.Errorf("%s: LEFT JOIN over NULL keys: got %d rows, want 3", d, n)
			}
		}
	})
	t.Run("cross collation", func(t *testing.T) {
		e := Open(dialect.SQLite)
		execAll(t, e,
			"CREATE TABLE a(s TEXT)", "CREATE TABLE b(s TEXT COLLATE NOCASE)",
			"INSERT INTO a VALUES ('x'), ('Y')",
			"INSERT INTO b VALUES ('X'), ('y')",
		)
		// ON collation comes from the left operand's column (BINARY): no
		// fold, no matches.
		if n := rowCount(t, e, "SELECT * FROM a JOIN b ON a.s = b.s"); n != 0 {
			t.Errorf("BINARY-collated join matched %d rows, want 0", n)
		}
		// NOCASE (from b's column or an explicit COLLATE) folds case.
		if n := rowCount(t, e, "SELECT * FROM b JOIN a ON b.s = a.s"); n != 2 {
			t.Errorf("NOCASE-collated join matched %d rows, want 2", n)
		}
		if n := rowCount(t, e, "SELECT * FROM a JOIN b ON a.s = b.s COLLATE NOCASE"); n != 2 {
			t.Errorf("explicit COLLATE NOCASE join matched %d rows, want 2", n)
		}
		// RTRIM ignores trailing spaces.
		execAll(t, e,
			"CREATE TABLE c(s TEXT)",
			"INSERT INTO c VALUES ('x   '), ('z')",
		)
		if n := rowCount(t, e, "SELECT * FROM a JOIN c ON a.s = c.s COLLATE RTRIM"); n != 1 {
			t.Errorf("COLLATE RTRIM join matched %d rows, want 1", n)
		}
	})
	t.Run("affinity mismatch", func(t *testing.T) {
		for _, d := range []dialect.Dialect{dialect.SQLite, dialect.MySQL} {
			e := Open(d)
			execAll(t, e,
				"CREATE TABLE a(k INT)", "CREATE TABLE b(k TEXT)",
				"INSERT INTO a VALUES (1), (2), (3)",
				"INSERT INTO b VALUES ('1'), ('2'), ('x')",
			)
			eOff := Open(d, WithoutHashJoin())
			execAll(t, eOff,
				"CREATE TABLE a(k INT)", "CREATE TABLE b(k TEXT)",
				"INSERT INTO a VALUES (1), (2), (3)",
				"INSERT INTO b VALUES ('1'), ('2'), ('x')",
			)
			q := "SELECT * FROM a JOIN b ON a.k = b.k"
			if got, want := runQuery(e, q), runQuery(eOff, q); got != want {
				t.Errorf("%s: affinity-mismatched join diverges:\nhash:\n%s\nnested:\n%s", d, got, want)
			}
		}
	})
	t.Run("empty build side", func(t *testing.T) {
		for _, d := range dialect.All {
			e := Open(d)
			execAll(t, e,
				"CREATE TABLE a(k INT)", "CREATE TABLE b(k INT)",
				"INSERT INTO a VALUES (1), (2)",
			)
			if n := rowCount(t, e, "SELECT * FROM a JOIN b ON a.k = b.k"); n != 0 {
				t.Errorf("%s: join against empty table returned %d rows", d, n)
			}
			if n := rowCount(t, e, "SELECT * FROM a LEFT JOIN b ON a.k = b.k"); n != 2 {
				t.Errorf("%s: LEFT JOIN against empty table returned %d rows, want 2", d, n)
			}
			if n := rowCount(t, e, "SELECT * FROM b JOIN a ON b.k = a.k"); n != 0 {
				t.Errorf("%s: join from empty table returned %d rows", d, n)
			}
		}
	})
}

// seedJoinPair loads two plain tables big enough that the cost model
// always picks hash over nested for their equi-join.
func seedJoinPair(t *testing.T, e *Engine, rows int) {
	t.Helper()
	execAll(t, e,
		"CREATE TABLE big0(k INT, v TEXT)",
		"CREATE TABLE big1(k INT, v TEXT)",
	)
	for _, tbl := range []string{"big0", "big1"} {
		var b strings.Builder
		fmt.Fprintf(&b, "INSERT INTO %s VALUES ", tbl)
		for i := 0; i < rows; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, 'v%d')", i, i)
		}
		mustExec(t, e, b.String())
	}
}

// TestJoinStrategyExplain asserts the planner surfaces the chosen join
// strategy — HASH, INDEX LOOKUP, or NESTED LOOP — through Plan and
// EXPLAIN QUERY PLAN, and that the ablation pins everything to nested.
func TestJoinStrategyExplain(t *testing.T) {
	e := Open(dialect.SQLite)
	seedJoinPair(t, e, 40)

	// Index lookup pays off when a small outer side probes a large indexed
	// inner table (its cost scales with the outer row count).
	execAll(t, e,
		"CREATE TABLE probe(k INT)",
		"INSERT INTO probe VALUES (1), (2), (3)",
		"CREATE INDEX ib1 ON big1(k)",
	)
	paths, err := e.PlanSQL("SELECT * FROM probe JOIN big1 ON probe.k = big1.k")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[0].Join != "" {
		t.Fatalf("paths = %+v, want 2 with no join tag on the driving relation", paths)
	}
	if paths[1].Join != "INDEX LOOKUP" || !strings.Contains(paths[1].JoinCond, "INDEX ib1") {
		t.Errorf("indexed equi-join plan = %s, want INDEX LOOKUP via ib1", paths[1].Detail())
	}

	mustExec(t, e, "DROP INDEX ib1")
	paths, err = e.PlanSQL("SELECT * FROM big0 JOIN big1 ON big0.k = big1.k")
	if err != nil {
		t.Fatal(err)
	}
	if paths[1].Join != "HASH" || !strings.Contains(paths[1].JoinCond, "big0.k = big1.k") {
		t.Errorf("equi-join plan = %s, want HASH on big0.k = big1.k", paths[1].Detail())
	}
	if !strings.Contains(paths[1].Detail(), "JOIN USING HASH") {
		t.Errorf("Detail() = %q, want JOIN USING HASH", paths[1].Detail())
	}

	paths, err = e.PlanSQL("SELECT * FROM big0 JOIN big1 ON big0.k < big1.k")
	if err != nil {
		t.Fatal(err)
	}
	if paths[1].Join != "NESTED LOOP" {
		t.Errorf("theta-join plan = %s, want NESTED LOOP", paths[1].Detail())
	}

	// EXPLAIN QUERY PLAN carries the same tag through SQL.
	res, err := e.Exec("EXPLAIN QUERY PLAN SELECT * FROM big0 JOIN big1 ON big0.k = big1.k")
	if err != nil {
		t.Fatal(err)
	}
	var joined []string
	for _, row := range res.Rows {
		joined = append(joined, row[0].Display())
	}
	all := strings.Join(joined, "\n")
	if !strings.Contains(all, "JOIN USING HASH") {
		t.Errorf("EXPLAIN QUERY PLAN = %q, want JOIN USING HASH line", all)
	}

	// Ablation: WithoutHashJoin pins the annotation to nested loop too.
	off := Open(dialect.SQLite, WithoutHashJoin())
	seedJoinPair(t, off, 40)
	paths, err = off.PlanSQL("SELECT * FROM big0 JOIN big1 ON big0.k = big1.k")
	if err != nil {
		t.Fatal(err)
	}
	if paths[1].Join != "NESTED LOOP" {
		t.Errorf("ablated plan = %s, want NESTED LOOP", paths[1].Detail())
	}
}

// TestJoinCostModelCrossover pins the cost crossover: tiny joins keep the
// nested loop (lower constant cost), larger ones flip to hash.
func TestJoinCostModelCrossover(t *testing.T) {
	a := &joinAnalysis{keys: []equiKey{{}}}
	if s, _ := chooseJoinStrategy(a, 2, 2); s != JoinNested {
		t.Errorf("2x2 equi-join chose %s, want nested (cost 4 vs 6)", s)
	}
	if s, _ := chooseJoinStrategy(a, 3, 3); s != JoinHash {
		t.Errorf("3x3 equi-join chose %s, want hash (cost 8 vs 9)", s)
	}
	if s, _ := chooseJoinStrategy(a, 1000, 1000); s != JoinHash {
		t.Errorf("1000x1000 equi-join chose %s, want hash", s)
	}
}

// TestHashJoinRuntimeCoverage proves the executor actually runs the hash
// and index-lookup paths (not just the planner annotation) via the
// engine's coverage counters.
func TestHashJoinRuntimeCoverage(t *testing.T) {
	e := Open(dialect.SQLite)
	seedJoinPair(t, e, 40)
	if n := rowCount(t, e, "SELECT * FROM big0 JOIN big1 ON big0.k = big1.k"); n != 40 {
		t.Fatalf("equi-join returned %d rows, want 40", n)
	}
	if e.Coverage().Snapshot()["join.hash"] == 0 {
		t.Error("hash join path never executed")
	}
	execAll(t, e,
		"CREATE TABLE probe(k INT)",
		"INSERT INTO probe VALUES (1), (2), (3)",
		"CREATE INDEX ib1 ON big1(k)",
	)
	if n := rowCount(t, e, "SELECT * FROM probe JOIN big1 ON probe.k = big1.k"); n != 3 {
		t.Fatalf("indexed equi-join returned %d rows, want 3", n)
	}
	if e.Coverage().Snapshot()["join.index-lookup"] == 0 {
		t.Error("index-lookup join path never executed")
	}

	off := Open(dialect.SQLite, WithoutHashJoin())
	seedJoinPair(t, off, 40)
	if n := rowCount(t, off, "SELECT * FROM big0 JOIN big1 ON big0.k = big1.k"); n != 40 {
		t.Fatalf("ablated equi-join returned %d rows, want 40", n)
	}
	cov := off.Coverage().Snapshot()
	if cov["join.hash"] != 0 || cov["join.index-lookup"] != 0 {
		t.Error("WithoutHashJoin engine still took a non-nested join path")
	}
}
