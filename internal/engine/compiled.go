// Compiled-expression wiring for the executor: the relation layout the
// eval compiler binds slots against, the per-statement program cache, and
// exprEval — the per-SELECT facade that hands the query path closures
// which evaluate through compiled programs by default and through the
// tree-walk interpreter when compilation is disabled (WithoutCompiledEval,
// the -no-compile escape hatch).
package engine

import (
	"repro/internal/eval"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

// relLayout exposes a statement's FROM relations as the compile-time
// layout for eval.Compile. Resolution goes through the same findColumn
// the tree-walk env uses — same case folding, same alias/table precedence
// — so compiled and interpreted paths bind identically.
type relLayout struct {
	rels []*relation
}

// NumRels implements eval.Layout.
func (l relLayout) NumRels() int { return len(l.rels) }

// Resolve implements eval.Layout.
func (l relLayout) Resolve(table, column string) (eval.Slot, eval.Meta, error) {
	ri, ci, ambiguous := findColumn(l.rels, table, column)
	if ambiguous {
		return eval.Slot{}, eval.Meta{}, eval.ErrAmbiguousColumn(column)
	}
	if ri < 0 {
		return eval.Slot{}, eval.Meta{}, eval.ErrNoSuchColumn(table, column)
	}
	col := l.rels[ri].columns[ci]
	return eval.Slot{Rel: ri, Col: ci}, eval.Meta{
		Coll:        col.Collate,
		Affinity:    col.Affinity,
		Unsigned:    col.Unsigned,
		TypeName:    col.TypeName,
		TableEngine: l.rels[ri].engine,
	}, nil
}

// progCacheMax bounds the per-engine program cache. Campaigns execute
// mostly fresh ASTs (each query a new pointer), so entries die with their
// statements; the bound only matters for long shell sessions, where a
// periodic full clear is simpler and cheaper than an eviction policy.
const progCacheMax = 1024

// compiledProgram compiles expr against the layout, caching by expression
// node identity. A node belongs to exactly one statement and a statement
// always materializes the same relation layout for it (FROM resolution is
// deterministic from the catalog), so node identity is the statement
// identity the cache needs; every DDL-class statement clears the cache
// before executing (see ExecStmt) because cached slots would go stale.
func (e *Engine) compiledProgram(expr sqlast.Expr, lay relLayout) (*eval.Program, error) {
	if p, ok := e.progs[expr]; ok {
		return p, nil
	}
	p, err := e.ev.Compile(expr, lay)
	if err != nil {
		return nil, err
	}
	if len(e.progs) >= progCacheMax {
		clear(e.progs)
	}
	e.progs[expr] = p
	return p, nil
}

// invalidatesPrograms reports whether a statement may change the schema
// (or session shape) cached programs were compiled against.
func invalidatesPrograms(st sqlast.Stmt) bool {
	switch st.(type) {
	case *sqlast.CreateTable, *sqlast.CreateIndex, *sqlast.CreateView,
		*sqlast.CreateStats, *sqlast.AlterTable, *sqlast.Drop,
		*sqlast.Maintenance, *sqlast.SetOption:
		return true
	}
	return false
}

// exprEval evaluates the expressions of one SELECT execution. It exists so
// the query path asks for a closure once per clause and calls it once per
// row combination — with compilation on, the closure runs a slot-bound
// program over a reusable frame; with compilation off, it walks the tree
// through the joined-row env exactly as before.
type exprEval struct {
	e        *Engine
	compiled bool
	env      joinedEnv
	lay      relLayout
	frame    eval.Frame
}

// newExprEval prepares expression evaluation over a relation set.
func (e *Engine) newExprEval(rels []*relation) *exprEval {
	x := &exprEval{e: e, env: joinedEnv{rels: rels}}
	if !e.noCompile {
		x.compiled = true
		x.lay = relLayout{rels: rels}
		x.frame.Rows = make([][]sqlval.Value, len(rels))
	}
	return x
}

// setRow points the evaluation state at one row combination; the closures
// returned by valueFn/boolFn evaluate against the most recent setRow.
// Callers bind the row once per combination, however many expressions
// they then evaluate on it. A nil row (or a combo shorter than the
// layout) is the NULL-extended side of an outer join.
func (x *exprEval) setRow(combo []*rowVals) {
	if !x.compiled {
		x.env.current = combo
		return
	}
	rows := x.frame.Rows
	for i := range rows {
		if i < len(combo) && combo[i] != nil {
			rows[i] = combo[i].vals
		} else {
			rows[i] = nil
		}
	}
}

// valueFn returns a closure computing expr against the current row (see
// setRow). With compilation on, bind errors (missing or ambiguous
// columns) surface here — once per statement — rather than per row. That
// is the one intended behavioural difference from tree-walk mode: over an
// empty row set the interpreter never evaluates the clause and a bad
// reference passes silently, while the compiled path rejects the
// statement up front (what a real DBMS's prepare step does).
func (x *exprEval) valueFn(expr sqlast.Expr) (func() (sqlval.Value, error), error) {
	if !x.compiled {
		return func() (sqlval.Value, error) {
			return x.e.ev.Eval(expr, &x.env)
		}, nil
	}
	prog, err := x.e.compiledProgram(expr, x.lay)
	if err != nil {
		return nil, err
	}
	return func() (sqlval.Value, error) {
		return prog.Eval(&x.frame)
	}, nil
}

// boolFn is valueFn for filter conditions.
func (x *exprEval) boolFn(expr sqlast.Expr) (func() (sqlval.TriBool, error), error) {
	if !x.compiled {
		return func() (sqlval.TriBool, error) {
			return x.e.ev.EvalBool(expr, &x.env)
		}, nil
	}
	prog, err := x.e.compiledProgram(expr, x.lay)
	if err != nil {
		return nil, err
	}
	return func() (sqlval.TriBool, error) {
		return prog.EvalBool(&x.frame)
	}, nil
}
