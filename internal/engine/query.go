package engine

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

// joinInfo carries the join kind and ON condition for each source after
// the first.
type joinInfo struct {
	kind sqlast.JoinKind
	on   sqlast.Expr
}

func (e *Engine) execSelect(n *sqlast.Select) (*Result, error) {
	e.cov.hit("dql.select")
	// Resolve sources.
	var rels []*relation
	var joins []joinInfo // parallel to rels[1:]
	single := len(n.From) == 1 && len(n.Joins) == 0
	for _, tr := range n.From {
		var r *relation
		var err error
		if single {
			// Single-source queries go through the planner: the access
			// path is chosen before materialization, so an index probe
			// fetches only candidate rows instead of the whole heap.
			r, err = e.buildPlannedRelation(n, tr)
		} else {
			r, err = e.buildRelation(tr)
		}
		if err != nil {
			return nil, err
		}
		rels = append(rels, r)
		if len(rels) > 1 {
			joins = append(joins, joinInfo{kind: sqlast.JoinCross})
		}
	}
	for _, jc := range n.Joins {
		r, err := e.buildRelation(jc.Table)
		if err != nil {
			return nil, err
		}
		rels = append(rels, r)
		joins = append(joins, joinInfo{kind: jc.Kind, on: jc.On})
	}
	if err := e.preQueryFaults(n, rels); err != nil {
		return nil, err
	}

	// Join / cross product with WHERE filtering.
	combos, err := e.joinRows(n, rels, joins)
	if err != nil {
		return nil, err
	}

	// Fault site (sqlite.norec-count-mismatch): a star-projection SELECT
	// with a WHERE clause drops its first matching row — the optimized
	// query shape NoREC compares, and one PQS never generates (pivot
	// queries always name their result columns).
	if e.d == dialect.SQLite && e.fs.Has(faults.NorecCountMismatch) &&
		n.Where != nil && len(combos) > 0 {
		for _, rc := range n.Cols {
			if rc.Star {
				combos = combos[1:]
				break
			}
		}
	}

	// GROUP BY / aggregates.
	outCols, outRows, err := e.project(n, rels, combos)
	if err != nil {
		return nil, err
	}

	if n.Distinct {
		outRows = e.distinct(outRows)
	}
	if len(n.OrderBy) > 0 {
		// Top-K: ORDER BY + small constant LIMIT keeps the k best rows in a
		// bounded heap instead of sorting everything (agg.go). Ineligible
		// shapes fall through to the full stable sort.
		handled := false
		if !e.noHashAgg && n.Limit != nil {
			handled, outRows, err = e.orderByTopK(n, rels, outRows)
			if err != nil {
				return nil, err
			}
		}
		if !handled {
			if err := e.orderBy(n, rels, outRows, combos); err != nil {
				return nil, err
			}
		}
	}
	outRows, err = e.applyLimit(n, outRows)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: outCols, Rows: outRows}, nil
}

// buildRelation materializes one FROM source.
func (e *Engine) buildRelation(tr sqlast.TableRef) (*relation, error) {
	t, ok := e.cat.Table(tr.Name)
	if !ok {
		return nil, xerr.New(xerr.CodeNoObject, "no such table: %s", tr.Name)
	}
	name := tr.Name
	if tr.Alias != "" {
		name = tr.Alias
	}
	if t.IsView {
		res, err := e.execSelect(t.ViewDef)
		if err != nil {
			return nil, err
		}
		r := &relation{name: name, columns: t.Columns}
		for _, row := range res.Rows {
			r.rows = append(r.rows, &rowVals{vals: row})
		}
		e.cov.hit("dql.view-scan")
		return r, nil
	}
	r := &relation{name: name, table: t.Name, columns: t.Columns, engine: t.Engine}
	td := e.data[lower(t.Name)]
	st := e.tableState(t.Name)

	// Fault site (sqlite.rowid-alias-crash): scanning a table after
	// RENAME COLUMN dereferences a stale column slot.
	if e.d == dialect.SQLite && e.fs.Has(faults.RowidAliasCrash) && st.renamedColumn {
		panic(crashPanic{site: "rowid_alias_resolve"})
	}

	heap := td.Rows()
	// One arena backs the scan's row headers (one *rowVals per heap row
	// per query adds up fast in campaign hot loops).
	arena := make([]rowVals, 0, len(heap))
	r.rows = make([]*rowVals, 0, len(heap))
	for _, row := range heap {
		// Fault site (generic.insert-visibility): the most recent insert
		// is invisible to scans.
		if e.d == dialect.MySQL && e.fs.Has(faults.InsertVisibility) && row.Rowid == st.lastInsert {
			continue
		}
		arena = append(arena, rowVals{rowid: row.Rowid, vals: row.Vals})
		r.rows = append(r.rows, &arena[len(arena)-1])
	}

	// Postgres inheritance: parent scans include children (Listing 15).
	if e.d == dialect.Postgres && !tr.Only && len(t.Children) > 0 {
		for _, leaf := range e.cat.InheritanceLeaves(t)[1:] {
			childTD := e.data[lower(leaf.Name)]
			for _, row := range childTD.Rows() {
				proj := make([]sqlval.Value, len(t.Columns))
				for ci := range t.Columns {
					cci := leaf.ColumnIndex(t.Columns[ci].Name)
					if cci >= 0 && cci < len(row.Vals) {
						proj[ci] = row.Vals[cci]
					} else {
						proj[ci] = sqlval.Null()
					}
				}
				r.rows = append(r.rows, &rowVals{rowid: -row.Rowid, vals: proj})
			}
		}
		e.cov.hit("dql.inheritance-scan")
	}
	return r, nil
}

// preQueryFaults raises the error-oracle faults that trigger on SELECT.
func (e *Engine) preQueryFaults(n *sqlast.Select, rels []*relation) error {
	for _, r := range rels {
		if r.table == "" {
			continue
		}
		st := e.tableState(r.table)
		// Fault site (postgres.stats-bitmapset, Listing 16).
		if e.d == dialect.Postgres && e.fs.Has(faults.StatsBitmapset) && st.hasStats && st.analyzed {
			for _, ix := range e.cat.IndexesOn(r.table) {
				for _, p := range ix.Parts {
					if _, bare := p.X.(*sqlast.ColumnRef); !bare {
						return xerr.New(xerr.CodeInternal, "negative bitmapset member not allowed")
					}
				}
			}
		}
		// Fault site (postgres.index-null-value, Listing 17): a column
		// indexed before the last UPDATE holds NULLs the index missed.
		if e.d == dialect.Postgres && e.fs.Has(faults.IndexNullValue) && n.Where != nil {
			for _, ix := range e.cat.IndexesOn(r.table) {
				if st.updateSeq <= ix.BuildSeq {
					continue
				}
				for _, p := range ix.Parts {
					cr, bare := p.X.(*sqlast.ColumnRef)
					if !bare {
						continue
					}
					ci := 0
					if t, ok := e.cat.Table(r.table); ok {
						ci = t.ColumnIndex(cr.Column)
					}
					if ci < 0 {
						continue
					}
					if !whereMentionsColumn(n.Where, cr.Column) {
						continue
					}
					// Inspect the heap, not the (possibly index-restricted)
					// relation: the fault is about stored index state.
					td := e.data[lower(r.table)]
					if td == nil {
						continue
					}
					for _, row := range td.Rows() {
						if ci < len(row.Vals) && row.Vals[ci].IsNull() {
							return xerr.New(xerr.CodeInternal, "found unexpected null value in index %q", ix.Name)
						}
					}
				}
			}
		}
	}
	return nil
}

func whereMentionsColumn(where sqlast.Expr, col string) bool {
	found := false
	sqlast.WalkExprs(where, func(x sqlast.Expr) bool {
		if cr, ok := x.(*sqlast.ColumnRef); ok && strings.EqualFold(cr.Column, col) {
			found = true
		}
		return true
	})
	return found
}

// planCandidates runs access-path selection for a single-table query and
// returns the candidate rowids the chosen path visits. restricted=false
// means a full heap scan was chosen. Candidates are a superset of the
// final answer in a correct engine; the residual WHERE filter still runs.
func (e *Engine) planCandidates(n *sqlast.Select, t *schema.Table, relName string) (rowids []int64, restricted bool) {
	if n.Where == nil && !n.Distinct {
		return nil, false
	}
	st := e.tableState(t.Name)

	// Partial-index enumeration: usable when the WHERE clause implies the
	// index predicate.
	if n.Where != nil {
		if ix := e.impliedPartialIndex(n.Where, t.Name); ix != nil {
			e.cov.hit("plan.partial-index-scan")
			return e.idxRowids(ix), true
		}
	}

	// Fault site (sqlite.skip-scan-distinct, Listing 6): after ANALYZE, a
	// DISTINCT query uses a skip-scan over a multi-column index and drops
	// rows whose leading key repeats.
	if e.d == dialect.SQLite && e.fs.Has(faults.SkipScanDistinct) && n.Distinct && st.analyzed {
		for _, ix := range e.cat.IndexesOn(t.Name) {
			if ix.Where != nil || len(ix.Parts) < 2 {
				continue
			}
			ixd := e.idx[lower(ix.Name)]
			if ixd == nil {
				continue
			}
			var keep []int64
			var prevLead sqlval.Value
			first := true
			for _, entry := range ixd.Entries() {
				if !first && sqlval.Compare(entry.Key[0], prevLead, sqlval.CollBinary) == 0 {
					continue // bogus skip
				}
				first = false
				prevLead = entry.Key[0]
				keep = append(keep, entry.Rowid)
			}
			return keep, true
		}
	}

	// Cost-based access-path selection: full scan vs index point lookup vs
	// index range scan, by simple row-count costing (see plan.go).
	if path := e.chooseAccessPath(n, t, relName); path != nil {
		switch path.Kind {
		case PathIndexEq:
			e.cov.hit("plan.index-eq-lookup")
		case PathIndexRange:
			e.cov.hit("plan.index-range-scan")
		}
		return e.executePath(path), true
	}
	if n.Where != nil {
		e.cov.hit("plan.full-scan")
	}
	return nil, false
}

// buildPlannedRelation materializes a single FROM source through the
// planner: when an index path is chosen, only the candidate rowids are
// fetched from the heap — point lookups cost O(log n), not O(n).
func (e *Engine) buildPlannedRelation(n *sqlast.Select, tr sqlast.TableRef) (*relation, error) {
	t, ok := e.cat.Table(tr.Name)
	if !ok {
		return nil, xerr.New(xerr.CodeNoObject, "no such table: %s", tr.Name)
	}
	if !e.plannable(t) {
		return e.buildRelation(tr)
	}
	name := tr.Name
	if tr.Alias != "" {
		name = tr.Alias
	}
	rowids, restricted := e.planCandidates(n, t, name)
	if !restricted {
		return e.buildRelation(tr)
	}
	st := e.tableState(t.Name)
	// Fault site (sqlite.rowid-alias-crash): resolving rows after RENAME
	// COLUMN dereferences a stale column slot, on any access path.
	if e.d == dialect.SQLite && e.fs.Has(faults.RowidAliasCrash) && st.renamedColumn {
		panic(crashPanic{site: "rowid_alias_resolve"})
	}
	td := e.data[lower(t.Name)]
	r := &relation{name: name, table: t.Name, columns: t.Columns, engine: t.Engine}
	// Deduplicate and fetch in rowid order, matching heap-scan order.
	sorted := append([]int64(nil), rowids...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	// One arena backs the fetched row headers (cap fixed up front so the
	// taken pointers stay valid).
	arena := make([]rowVals, 0, len(sorted))
	r.rows = make([]*rowVals, 0, len(sorted))
	var prev int64
	for i, rid := range sorted {
		if i > 0 && rid == prev {
			continue
		}
		prev = rid
		row, ok := td.Get(rid)
		if !ok {
			continue // dangling index entry (stale-index fault class)
		}
		// Fault site (generic.insert-visibility): the most recent insert
		// is invisible to scans.
		if e.d == dialect.MySQL && e.fs.Has(faults.InsertVisibility) && row.Rowid == st.lastInsert {
			continue
		}
		arena = append(arena, rowVals{rowid: row.Rowid, vals: row.Vals})
		r.rows = append(r.rows, &arena[len(arena)-1])
	}
	return r, nil
}

// predicateImplies reports whether `where` implies the partial-index
// predicate. The correct engine is deliberately conservative: structural
// equality of the predicate with the WHERE clause or one of its AND
// conjuncts.
func (e *Engine) predicateImplies(where, pred sqlast.Expr) bool {
	predSQL := sqlast.ExprSQL(sqlast.StripQualifiers(pred), e.d)
	for _, conj := range conjuncts(where) {
		if sqlast.ExprSQL(sqlast.StripQualifiers(conj), e.d) == predSQL {
			return true
		}
		// Fault site (sqlite.partial-index-not-null, Listing 1): the
		// planner assumes `col IS NOT <literal>` implies `col NOT NULL`.
		if e.d == dialect.SQLite && e.fs.Has(faults.PartialIndexNotNull) {
			if b, ok := conj.(*sqlast.Binary); ok && b.Op == sqlast.OpIsNot {
				if cr, ok := stripCollate(b.L).(*sqlast.ColumnRef); ok {
					if lit, ok := b.R.(*sqlast.Literal); ok && !lit.Val.IsNull() {
						if u, ok := pred.(*sqlast.Unary); ok && u.Op == sqlast.OpNotNull {
							if pcr, ok := stripCollate(u.X).(*sqlast.ColumnRef); ok &&
								strings.EqualFold(pcr.Column, cr.Column) {
								return true
							}
						}
					}
				}
			}
		}
	}
	return false
}

func stripCollate(e sqlast.Expr) sqlast.Expr {
	for {
		c, ok := e.(*sqlast.Collate)
		if !ok {
			return e
		}
		e = c.X
	}
}

func conjuncts(e sqlast.Expr) []sqlast.Expr {
	if b, ok := e.(*sqlast.Binary); ok && b.Op == sqlast.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sqlast.Expr{e}
}

// idxRowids enumerates every rowid in an index.
func (e *Engine) idxRowids(ix *schema.Index) []int64 {
	ixd := e.idx[lower(ix.Name)]
	if ixd == nil {
		return nil
	}
	var out []int64
	for _, entry := range ixd.Entries() {
		out = append(out, entry.Rowid)
	}
	return out
}

// joinRows enumerates filtered row combinations.
func (e *Engine) joinRows(n *sqlast.Select, rels []*relation, joins []joinInfo) ([][]*rowVals, error) {
	// FROM-less SELECT evaluates over a single empty row (SELECT 1).
	if len(rels) == 0 {
		combos := [][]*rowVals{{}}
		if n.Where == nil {
			return combos, nil
		}
		return e.filterCombos(n, rels, combos)
	}
	// Fault site (generic.join-predicate-pushdown): with two FROM tables
	// and a WHERE touching only the second, the "pushdown" also prunes
	// the first table to a single row.
	if e.d == dialect.MySQL && e.fs.Has(faults.JoinPredicatePushdown) &&
		len(rels) == 2 && n.Where != nil && len(n.Joins) == 0 {
		refs := map[string]bool{}
		for _, c := range sqlast.ColumnsUsed(n.Where) {
			if c.Table != "" {
				refs[strings.ToLower(c.Table)] = true
			}
		}
		if len(refs) == 1 && refs[strings.ToLower(rels[1].name)] && len(rels[0].rows) > 1 {
			rels[0].rows = rels[0].rows[:1]
		}
	}

	// Start with the first relation's rows. One backing array holds every
	// single-element combo, instead of one allocation per row.
	combos := make([][]*rowVals, len(rels[0].rows))
	backing := make([]*rowVals, len(rels[0].rows))
	for ri, row := range rels[0].rows {
		backing[ri] = row
		combos[ri] = backing[ri : ri+1 : ri+1]
	}
	scratch := make([]*rowVals, 0, len(rels))
	var arena comboArena
	// spare recycles the previous level's combo-header array: once a level
	// has been consumed as input, its [][]*rowVals backing becomes the
	// append target for the next level's output.
	var spare [][]*rowVals
	crossOK := e.crossPrefilterOK(n, rels)
	for i := 1; i < len(rels); i++ {
		j := joins[i-1]
		// The ON condition is bound once per join level — against the
		// layout prefix visible at this level, so unqualified-name
		// resolution (and its ambiguity rules) match the tree-walk env —
		// and the resulting closure runs per row pair. Binding happens
		// before strategy dispatch so compile-time errors (missing or
		// ambiguous columns) are identical on every join path.
		var onEval *exprEval
		var onTest func() (sqlval.TriBool, error)
		if j.on != nil {
			onEval = e.newExprEval(rels[:i+1])
			var err error
			onTest, err = onEval.boolFn(j.on)
			if err != nil {
				return nil, err
			}
		}
		// Strategy selection: hash or index-lookup when the level has
		// usable equality keys and the cost model favors them; the nested
		// loop otherwise (see join.go for the eligibility rules).
		a := e.analyzeJoin(n, rels, j, i, crossOK)
		strat := JoinNested
		if a != nil {
			strat, _ = chooseJoinStrategy(a, float64(len(combos)), float64(len(rels[i].rows)))
			if strat == JoinHash && e.d == dialect.Postgres &&
				!pgJoinClassesCompatible(a, rels, i) {
				strat = JoinNested
			}
		}
		lv := &joinLevel{n: n, rels: rels, level: i, j: j,
			onEval: onEval, onTest: onTest, arena: &arena, scratch: &scratch}
		var next [][]*rowVals
		var err error
		switch strat {
		case JoinHash:
			e.cov.hit("join.hash")
			next, err = e.hashJoinLevel(lv, a, combos, spare[:0])
		case JoinIndexLookup:
			e.cov.hit("join.index-lookup")
			next, err = e.indexJoinLevel(lv, a, combos, spare[:0])
		default:
			next, err = e.nestedJoinLevel(lv, combos, spare[:0])
		}
		if err != nil {
			return nil, err
		}
		spare = combos
		combos = next
	}

	if n.Where == nil {
		return combos, nil
	}
	return e.filterCombos(n, rels, combos)
}

func hasNullVal(row *rowVals) bool {
	for _, v := range row.vals {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// filterCombos applies the WHERE clause to joined row combinations.
func (e *Engine) filterCombos(n *sqlast.Select, rels []*relation, combos [][]*rowVals) ([][]*rowVals, error) {
	// Fault site (generic.where-true-drop): the filter loop skips the
	// first matching row when the WHERE root is an OR over an indexed
	// column.
	dropFirst := false
	if e.d == dialect.SQLite && e.fs.Has(faults.WhereTrueDrop) {
		if b, ok := n.Where.(*sqlast.Binary); ok && b.Op == sqlast.OpOr {
			for _, c := range sqlast.ColumnsUsed(n.Where) {
				for _, r := range rels {
					if r.table == "" {
						continue
					}
					for _, ix := range e.cat.IndexesOn(r.table) {
						for _, p := range ix.Parts {
							if cr, ok := p.X.(*sqlast.ColumnRef); ok && strings.EqualFold(cr.Column, c.Column) {
								dropFirst = true
							}
						}
					}
				}
			}
		}
	}
	// The WHERE clause compiles once per statement; the per-combo cost is
	// a slot-bound program run, not a tree walk with name resolution.
	x := e.newExprEval(rels)
	test, err := x.boolFn(n.Where)
	if err != nil {
		return nil, err
	}
	out := make([][]*rowVals, 0, len(combos))
	for _, combo := range combos {
		x.setRow(combo)
		tb, err := test()
		if err != nil {
			return nil, err
		}
		if tb != sqlval.TriTrue {
			continue
		}
		if dropFirst {
			dropFirst = false
			continue
		}
		out = append(out, combo)
	}
	return out, nil
}

// aggNames are the aggregate functions the executor handles.
var aggNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true, "TOTAL": true}

// isAggregate reports whether a result column is an aggregate call. Scalar
// MIN/MAX with ≥2 args stay scalar (SQLite semantics).
func isAggregate(x sqlast.Expr) (*sqlast.FuncCall, bool) {
	fc, ok := x.(*sqlast.FuncCall)
	if !ok || !aggNames[strings.ToUpper(fc.Name)] {
		return nil, false
	}
	up := strings.ToUpper(fc.Name)
	if (up == "MIN" || up == "MAX") && len(fc.Args) != 1 {
		return nil, false
	}
	return fc, true
}

// outCol is one expanded result column of a projection.
type outCol struct {
	name string
	x    sqlast.Expr // nil for star expansion entries (direct value)
	rel  int         // star source relation
	col  int         // star source column
}

// projCtx bundles the projection state shared between the grouped
// executors (the materialized baseline below and the streaming hash path
// in agg.go).
type projCtx struct {
	n         *sqlast.Select
	rels      []*relation
	cols      []outCol
	outNames  []string
	x         *exprEval
	colFns    []func() (sqlval.Value, error)
	groupKeys []sqlast.Expr
}

// project computes output columns and rows, handling GROUP BY and
// aggregates.
func (e *Engine) project(n *sqlast.Select, rels []*relation, combos [][]*rowVals) ([]string, [][]sqlval.Value, error) {
	// Expand result columns.
	var cols []outCol
	hasAgg := false
	for i, rc := range n.Cols {
		if rc.Star {
			for ri, r := range rels {
				for ci := range r.columns {
					cols = append(cols, outCol{name: r.columns[ci].Name, x: nil, rel: ri, col: ci})
				}
			}
			continue
		}
		name := rc.Alias
		if name == "" {
			if cr, ok := rc.X.(*sqlast.ColumnRef); ok {
				name = cr.Column
			} else {
				name = "col" + itoa(i)
			}
		}
		if _, ok := isAggregate(rc.X); ok {
			hasAgg = true
		}
		cols = append(cols, outCol{name: name, x: rc.X, rel: -1})
	}
	outNames := make([]string, len(cols))
	for i := range cols {
		outNames[i] = cols[i].name
	}

	// Listing 8 hijack: the double-quoted index part overrides the
	// renamed column's projected value under DISTINCT.
	hijack := func(combo []*rowVals) []*rowVals {
		if !n.Distinct || e.d != dialect.SQLite || !e.fs.Has(faults.DoubleQuoteIndex) {
			return combo
		}
		out := combo
		for ri, r := range rels {
			if r.table == "" {
				continue
			}
			st := e.tableState(r.table)
			if st.dqHijackCol < 0 || combo[ri] == nil {
				continue
			}
			if out[ri] == combo[ri] {
				cp := &rowVals{rowid: combo[ri].rowid, vals: append([]sqlval.Value{}, combo[ri].vals...)}
				if st.dqHijackCol < len(cp.vals) {
					cp.vals[st.dqHijackCol] = sqlval.Text(st.dqHijackVal)
				}
				if ri == 0 {
					out = append([]*rowVals{cp}, combo[1:]...)
				} else {
					out = append(append(append([]*rowVals{}, combo[:ri]...), cp), combo[ri+1:]...)
				}
			}
		}
		return out
	}

	// Bind every projected expression once (aggregates are computed per
	// group below and never through the scalar path).
	x := e.newExprEval(rels)
	colFns := make([]func() (sqlval.Value, error), len(cols))
	for i, c := range cols {
		if c.x == nil {
			continue
		}
		if _, ok := isAggregate(c.x); ok {
			continue
		}
		fn, err := x.valueFn(c.x)
		if err != nil {
			return nil, nil, err
		}
		colFns[i] = fn
	}

	evalRowInto := func(row []sqlval.Value, combo []*rowVals) error {
		combo = hijack(combo)
		x.setRow(combo)
		for i, c := range cols {
			if c.x == nil {
				if combo[c.rel] == nil || c.col >= len(combo[c.rel].vals) {
					row[i] = sqlval.Null()
				} else {
					row[i] = combo[c.rel].vals[c.col]
				}
				continue
			}
			v, err := colFns[i]()
			if err != nil {
				return err
			}
			row[i] = v
		}
		return nil
	}

	if len(n.GroupBy) == 0 && !hasAgg {
		rows := make([][]sqlval.Value, 0, len(combos))
		// One arena backs every output row: the per-row make() here was
		// the single largest allocation site in campaign profiles.
		arena := make([]sqlval.Value, len(cols)*len(combos))
		for ci, combo := range combos {
			row := arena[ci*len(cols) : (ci+1)*len(cols) : (ci+1)*len(cols)]
			err := evalRowInto(row, combo)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, row)
		}
		return outNames, rows, nil
	}

	// Grouping.
	e.cov.hit("dql.group-by")
	groupKeys := n.GroupBy
	// Fault site (postgres.inheritance-group-by, Listing 15): grouping an
	// inheritance scan collapses groups onto the first key only.
	if e.d == dialect.Postgres && e.fs.Has(faults.InheritanceGroupBy) && len(groupKeys) > 1 {
		inherited := false
		for _, r := range rels {
			if r.table == "" {
				continue
			}
			if t, ok := e.cat.Table(r.table); ok && len(t.Children) > 0 {
				inherited = true
			}
		}
		if inherited {
			groupKeys = groupKeys[:1]
		}
	}

	pc := &projCtx{n: n, rels: rels, cols: cols, outNames: outNames,
		x: x, colFns: colFns, groupKeys: groupKeys}
	if !e.noHashAgg && streamableAgg(cols) {
		return e.projectGroupedHash(pc, combos)
	}
	return e.projectGroupedNaive(pc, combos)
}

// projectGroupedNaive is the materialized grouped/aggregate projection:
// groups resolve by a linear keysEqual scan, every group retains its
// combos, and aggregates re-iterate them per column. It is the ablation
// baseline (hashagg=off) the streaming path must match byte-for-byte.
func (e *Engine) projectGroupedNaive(pc *projCtx, combos [][]*rowVals) ([]string, [][]sqlval.Value, error) {
	n, rels, cols, x, colFns, groupKeys :=
		pc.n, pc.rels, pc.cols, pc.x, pc.colFns, pc.groupKeys

	type group struct {
		key    []sqlval.Value
		combos [][]*rowVals
	}
	var groups []*group
	if len(groupKeys) == 0 {
		// Implicit single group over all rows (pure-aggregate query).
		groups = []*group{{combos: combos}}
	} else {
		keyFns := make([]func() (sqlval.Value, error), len(groupKeys))
		for i, gx := range groupKeys {
			fn, err := x.valueFn(gx)
			if err != nil {
				return nil, nil, err
			}
			keyFns[i] = fn
		}
		for _, combo := range combos {
			x.setRow(combo)
			key := make([]sqlval.Value, len(groupKeys))
			for i := range keyFns {
				v, err := keyFns[i]()
				if err != nil {
					return nil, nil, err
				}
				key[i] = v
			}
			var g *group
			for _, cand := range groups {
				if keysEqual(cand.key, key) {
					g = cand
					break
				}
			}
			if g == nil {
				g = &group{key: key}
				groups = append(groups, g)
			}
			g.combos = append(g.combos, combo)
		}
	}

	var havingTest func() (sqlval.TriBool, error)
	if n.Having != nil {
		var err error
		havingTest, err = x.boolFn(n.Having)
		if err != nil {
			return nil, nil, err
		}
	}
	var rows [][]sqlval.Value
	for _, g := range groups {
		rep := make([]*rowVals, len(rels)) // all-NULL row for empty groups
		if len(g.combos) > 0 {
			rep = g.combos[0]
		} else if len(groupKeys) > 0 {
			continue // only the implicit aggregate group may be empty
		}
		if havingTest != nil {
			x.setRow(rep)
			tb, err := havingTest()
			if err != nil {
				return nil, nil, err
			}
			if tb != sqlval.TriTrue {
				continue
			}
		}
		row := make([]sqlval.Value, len(cols))
		for i, c := range cols {
			if c.x == nil {
				if rep[c.rel] == nil || c.col >= len(rep[c.rel].vals) {
					row[i] = sqlval.Null()
				} else {
					row[i] = rep[c.rel].vals[c.col]
				}
				continue
			}
			if fc, ok := isAggregate(c.x); ok {
				v, err := e.aggregate(fc, x, g.combos)
				if err != nil {
					return nil, nil, err
				}
				row[i] = v
				continue
			}
			// setRow per column: the aggregate above iterates the group's
			// combos and leaves the evaluation state on the last one.
			x.setRow(rep)
			v, err := colFns[i]()
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return pc.outNames, rows, nil
}

// keysEqual compares group keys: NULLs group together (SQL GROUP BY
// semantics), unlike ordinary equality.
func keysEqual(a, b []sqlval.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsNull() || b[i].IsNull() {
			if a[i].IsNull() != b[i].IsNull() {
				return false
			}
			continue
		}
		if sqlval.Compare(a[i], b[i], sqlval.CollBinary) != 0 {
			return false
		}
	}
	return true
}

// aggregate computes one aggregate over a group. The argument expression
// binds through the statement's exprEval, so the compiled program is
// shared across every group of the statement (the engine's program cache
// keys by AST node).
func (e *Engine) aggregate(fc *sqlast.FuncCall, x *exprEval, combos [][]*rowVals) (sqlval.Value, error) {
	e.cov.hit("dql.aggregate." + strings.ToUpper(fc.Name))
	up := strings.ToUpper(fc.Name)
	// Fault site (sqlite.agg-empty-group): an aggregate whose filtered
	// input is empty materializes a phantom row — COUNT reports 1,
	// SUM/MIN/MAX report 0 instead of NULL. PQS never aggregates; TLP's
	// partition aggregates hit empty inputs constantly (the `p IS NULL`
	// partition is usually empty).
	if e.d == dialect.SQLite && e.fs.Has(faults.AggEmptyGroup) && len(combos) == 0 {
		switch up {
		case "COUNT":
			return sqlval.Int(1), nil
		case "SUM", "MIN", "MAX":
			return sqlval.Int(0), nil
		}
	}
	if up == "COUNT" && len(fc.Args) == 0 {
		return sqlval.Int(int64(len(combos))), nil
	}
	if len(fc.Args) != 1 {
		return sqlval.Null(), xerr.New(xerr.CodeType, "aggregate %s expects one argument", fc.Name)
	}
	argFn, err := x.valueFn(fc.Args[0])
	if err != nil {
		return sqlval.Null(), err
	}
	var vals []sqlval.Value
	for _, combo := range combos {
		x.setRow(combo)
		v, err := argFn()
		if err != nil {
			return sqlval.Null(), err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch up {
	case "COUNT":
		return sqlval.Int(int64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqlval.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := sqlval.Compare(v, best, sqlval.CollBinary)
			if (up == "MIN" && c < 0) || (up == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "SUM", "TOTAL", "AVG":
		if len(vals) == 0 {
			if up == "TOTAL" {
				return sqlval.Real(0), nil
			}
			return sqlval.Null(), nil
		}
		allInt := up != "TOTAL" && up != "AVG"
		var isum int64
		var fsum float64
		for _, v := range vals {
			if e.d == dialect.Postgres && !v.IsNumeric() {
				return sqlval.Null(), xerr.New(xerr.CodeType, "%s(%s)", fc.Name, v.Kind())
			}
			var num sqlval.Value
			switch v.Kind() {
			case sqlval.KInt, sqlval.KUint, sqlval.KReal, sqlval.KBool:
				num = v
			default:
				num = sqlval.Real(0)
				if parsed, ok := sqlval.TextToNumeric(v.Display()); ok {
					num = parsed
				}
			}
			if num.Kind() == sqlval.KInt || num.Kind() == sqlval.KBool {
				isum += num.Int64()
				fsum += float64(num.Int64())
			} else {
				allInt = false
				fsum += num.AsFloat()
			}
		}
		switch up {
		case "AVG":
			return sqlval.Real(fsum / float64(len(vals))), nil
		case "TOTAL":
			return sqlval.Real(fsum), nil
		default:
			if allInt {
				return sqlval.Int(isum), nil
			}
			return sqlval.Real(fsum), nil
		}
	}
	return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "aggregate %s", fc.Name)
}

// distinct deduplicates output rows.
func (e *Engine) distinct(rows [][]sqlval.Value) [][]sqlval.Value {
	e.cov.hit("dql.distinct")
	// Fault site (generic.distinct-collation): DISTINCT compares text
	// case-insensitively regardless of column collation.
	coll := sqlval.CollBinary
	if e.d == dialect.SQLite && e.fs.Has(faults.DistinctCollation) {
		coll = sqlval.CollNoCase
	}
	// Large result sets bucket rows by a conservative hash key first
	// (Compare-equal rows always share a key; key collisions fall back to
	// pairwise Compare), turning the O(n²) scan into near-linear work.
	// The collated fault path keeps the plain scan: its equality is
	// deliberately non-standard and rare.
	if coll == sqlval.CollBinary && len(rows) > 16 {
		return e.distinctHashed(rows)
	}
	var out [][]sqlval.Value
	for _, row := range rows {
		dup := false
		for _, prev := range out {
			if rowsEqual(row, prev, coll) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, row)
		}
	}
	return out
}

func rowsEqual(a, b []sqlval.Value, coll sqlval.Collation) bool {
	for i := range a {
		if a[i].IsNull() || b[i].IsNull() {
			if a[i].IsNull() != b[i].IsNull() {
				return false
			}
			continue
		}
		if sqlval.Compare(a[i], b[i], coll) != 0 {
			return false
		}
	}
	return true
}

// distinctHashed is the binary-collation DISTINCT fast path.
func (e *Engine) distinctHashed(rows [][]sqlval.Value) [][]sqlval.Value {
	buckets := make(map[string][][]sqlval.Value, len(rows))
	out := make([][]sqlval.Value, 0, len(rows))
	var key strings.Builder
	for _, row := range rows {
		key.Reset()
		for _, v := range row {
			switch {
			case v.IsNull():
				key.WriteString("\x00n")
			case v.Kind() == sqlval.KText:
				key.WriteString("\x00t")
				key.WriteString(v.Str())
			case v.Kind() == sqlval.KBlob:
				key.WriteString("\x00b")
				key.WriteString(v.BlobStr())
			default:
				// Numeric (incl. bool): Compare treats 1, 1.0, and TRUE
				// as equal, so the key folds them to one float rendering
				// (negative zero folds to zero — Compare says they are
				// equal but FormatFloat renders them apart). Distinct huge
				// integers can collide on the same float; the in-bucket
				// Compare pass disambiguates.
				f := v.AsFloat()
				if f == 0 {
					f = 0
				}
				key.WriteString("\x00f")
				key.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
			}
		}
		k := key.String()
		dup := false
		for _, prev := range buckets[k] {
			if rowsEqual(row, prev, sqlval.CollBinary) {
				dup = true
				break
			}
		}
		if !dup {
			buckets[k] = append(buckets[k], row)
			out = append(out, row)
		}
	}
	return out
}

// resolveOrderKeys maps ORDER BY expressions onto output-column indexes by
// rendered SQL (or positionally through star expansions), shared by the
// full sort and the top-K path so both raise the identical resolution
// error.
func (e *Engine) resolveOrderKeys(n *sqlast.Select, rels []*relation) ([]int, error) {
	keyIdx := make([]int, len(n.OrderBy))
	for i, oi := range n.OrderBy {
		keyIdx[i] = -1
		want := sqlast.ExprSQL(oi.X, e.d)
		for ci, rc := range n.Cols {
			if rc.Star {
				continue
			}
			if sqlast.ExprSQL(rc.X, e.d) == want || (rc.Alias != "" && rc.Alias == want) {
				keyIdx[i] = ci
				break
			}
		}
		// Star projections: resolve a bare column reference positionally.
		if keyIdx[i] < 0 {
			if cr, ok := oi.X.(*sqlast.ColumnRef); ok {
				pos := 0
				for _, rc := range n.Cols {
					if !rc.Star {
						pos++
						continue
					}
					for _, r := range rels {
						for ci2 := range r.columns {
							if strings.EqualFold(r.columns[ci2].Name, cr.Column) &&
								(cr.Table == "" || strings.EqualFold(cr.Table, r.name)) {
								keyIdx[i] = pos
							}
							pos++
						}
					}
				}
			}
		}
		if keyIdx[i] < 0 {
			return nil, xerr.New(xerr.CodeNoObject, "ORDER BY term does not match any result column")
		}
	}
	return keyIdx, nil
}

// orderBy sorts output rows in place by the ORDER BY items. Sort keys are
// recomputed from output rows when the order expression matches an output
// column; otherwise they must be simple column references.
func (e *Engine) orderBy(n *sqlast.Select, rels []*relation, rows [][]sqlval.Value, combos [][]*rowVals) error {
	e.cov.hit("dql.order-by")
	keyIdx, err := e.resolveOrderKeys(n, rels)
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i := range keyIdx {
			va, vb := rows[a][keyIdx[i]], rows[b][keyIdx[i]]
			c := sqlval.Compare(va, vb, sqlval.CollBinary)
			if n.OrderBy[i].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

// applyLimit applies LIMIT/OFFSET.
func (e *Engine) applyLimit(n *sqlast.Select, rows [][]sqlval.Value) ([][]sqlval.Value, error) {
	if n.Limit == nil {
		return rows, nil
	}
	e.cov.hit("dql.limit")
	lv, err := e.constEval(n.Limit)
	if err != nil {
		return nil, err
	}
	limit := int(lv.Int64())
	if lv.Kind() != sqlval.KInt || limit < 0 {
		return nil, xerr.New(xerr.CodeType, "LIMIT must be a non-negative integer")
	}
	offset := 0
	if n.Offset != nil {
		ov, err := e.constEval(n.Offset)
		if err != nil {
			return nil, err
		}
		if ov.Kind() != sqlval.KInt || ov.Int64() < 0 {
			return nil, xerr.New(xerr.CodeType, "OFFSET must be a non-negative integer")
		}
		offset = int(ov.Int64())
	}
	if offset >= len(rows) {
		return nil, nil
	}
	rows = rows[offset:]
	if limit < len(rows) {
		rows = rows[:limit]
	}
	// Fault site (generic.order-by-limit-drop): ORDER BY + LIMIT loses
	// the last row when any emitted sort key is NULL.
	if e.d == dialect.Postgres && e.fs.Has(faults.OrderByLimitDrop) &&
		len(n.OrderBy) > 0 && len(rows) > 0 && anyRowHasNull(rows) {
		rows = rows[:len(rows)-1]
	}
	return rows, nil
}

// anyRowHasNull reports whether any emitted value is NULL, returning on
// the first hit (the fault gate above keeps the scan off sound engines).
func anyRowHasNull(rows [][]sqlval.Value) bool {
	for _, row := range rows {
		for _, v := range row {
			if v.IsNull() {
				return true
			}
		}
	}
	return false
}
