package engine

import (
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

// execCompound evaluates UNION / UNION ALL / INTERSECT / EXCEPT chains,
// left-associatively. The set operators use SQL's DISTINCT-style equality:
// NULLs compare equal, numeric values compare across storage classes.
func (e *Engine) execCompound(n *sqlast.Compound) (*Result, error) {
	e.cov.hit("dql.compound")
	if len(n.Selects) < 2 || len(n.Ops) != len(n.Selects)-1 {
		return nil, xerr.New(xerr.CodeSyntax, "malformed compound select")
	}
	hasUnionAll := false
	for _, op := range n.Ops {
		if op == sqlast.OpUnionAll {
			hasUnionAll = true
		}
	}
	// arm evaluates one compound arm. Fault site
	// (sqlite.null-partition-drop): inside a UNION ALL chain, an arm whose
	// WHERE root is an IS NULL test contributes no rows — the shape of
	// TLP's third partition, which no pivot query ever takes.
	arm := func(sel *sqlast.Select) (*Result, error) {
		res, err := e.execSelect(sel)
		if err != nil {
			return nil, err
		}
		if hasUnionAll && e.d == dialect.SQLite && e.fs.Has(faults.NullPartitionDrop) {
			if u, ok := sel.Where.(*sqlast.Unary); ok && u.Op == sqlast.OpIsNull {
				res = &Result{Columns: res.Columns}
			}
		}
		return res, nil
	}
	acc, err := arm(n.Selects[0])
	if err != nil {
		return nil, err
	}
	for i, sel := range n.Selects[1:] {
		right, err := arm(sel)
		if err != nil {
			return nil, err
		}
		if len(acc.Columns) != len(right.Columns) {
			return nil, xerr.New(xerr.CodeSyntax,
				"SELECTs to the left and right of %s do not have the same number of result columns",
				n.Ops[i])
		}
		switch n.Ops[i] {
		case sqlast.OpUnionAll:
			rows := append(acc.Rows, right.Rows...)
			// Fault site (sqlite.union-all-dedup): UNION ALL deduplicates
			// its concatenation the way UNION does.
			if e.d == dialect.SQLite && e.fs.Has(faults.UnionAllDedup) {
				rows = setDedup(rows)
			}
			acc = &Result{Columns: acc.Columns, Rows: rows}
		case sqlast.OpUnion:
			acc = &Result{Columns: acc.Columns, Rows: setDedup(append(acc.Rows, right.Rows...))}
		case sqlast.OpIntersect:
			acc = &Result{Columns: acc.Columns, Rows: setIntersect(acc.Rows, right.Rows)}
		case sqlast.OpExcept:
			acc = &Result{Columns: acc.Columns, Rows: setExcept(acc.Rows, right.Rows)}
		}
		e.cov.hit("dql.compound." + n.Ops[i].String())
	}
	return acc, nil
}

// rowsSetEqual is DISTINCT-style row equality: NULLs equal, numerics
// compare across storage classes, text under BINARY.
func rowsSetEqual(a, b []sqlval.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsNull() || b[i].IsNull() {
			if a[i].IsNull() != b[i].IsNull() {
				return false
			}
			continue
		}
		if sqlval.Compare(a[i], b[i], sqlval.CollBinary) != 0 {
			return false
		}
	}
	return true
}

func setContains(rows [][]sqlval.Value, row []sqlval.Value) bool {
	for _, r := range rows {
		if rowsSetEqual(r, row) {
			return true
		}
	}
	return false
}

func setDedup(rows [][]sqlval.Value) [][]sqlval.Value {
	var out [][]sqlval.Value
	for _, r := range rows {
		if !setContains(out, r) {
			out = append(out, r)
		}
	}
	return out
}

func setIntersect(left, right [][]sqlval.Value) [][]sqlval.Value {
	var out [][]sqlval.Value
	for _, r := range setDedup(left) {
		if setContains(right, r) {
			out = append(out, r)
		}
	}
	return out
}

func setExcept(left, right [][]sqlval.Value) [][]sqlval.Value {
	var out [][]sqlval.Value
	for _, r := range setDedup(left) {
		if !setContains(right, r) {
			out = append(out, r)
		}
	}
	return out
}
