package engine

import (
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

// execCompound evaluates UNION / UNION ALL / INTERSECT / EXCEPT chains,
// left-associatively. The set operators use SQL's DISTINCT-style equality:
// NULLs compare equal, numeric values compare across storage classes.
func (e *Engine) execCompound(n *sqlast.Compound) (*Result, error) {
	e.cov.hit("dql.compound")
	if len(n.Selects) < 2 || len(n.Ops) != len(n.Selects)-1 {
		return nil, xerr.New(xerr.CodeSyntax, "malformed compound select")
	}
	acc, err := e.execSelect(n.Selects[0])
	if err != nil {
		return nil, err
	}
	for i, sel := range n.Selects[1:] {
		right, err := e.execSelect(sel)
		if err != nil {
			return nil, err
		}
		if len(acc.Columns) != len(right.Columns) {
			return nil, xerr.New(xerr.CodeSyntax,
				"SELECTs to the left and right of %s do not have the same number of result columns",
				n.Ops[i])
		}
		switch n.Ops[i] {
		case sqlast.OpUnionAll:
			acc = &Result{Columns: acc.Columns, Rows: append(acc.Rows, right.Rows...)}
		case sqlast.OpUnion:
			acc = &Result{Columns: acc.Columns, Rows: setDedup(append(acc.Rows, right.Rows...))}
		case sqlast.OpIntersect:
			acc = &Result{Columns: acc.Columns, Rows: setIntersect(acc.Rows, right.Rows)}
		case sqlast.OpExcept:
			acc = &Result{Columns: acc.Columns, Rows: setExcept(acc.Rows, right.Rows)}
		}
		e.cov.hit("dql.compound." + n.Ops[i].String())
	}
	return acc, nil
}

// rowsSetEqual is DISTINCT-style row equality: NULLs equal, numerics
// compare across storage classes, text under BINARY.
func rowsSetEqual(a, b []sqlval.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsNull() || b[i].IsNull() {
			if a[i].IsNull() != b[i].IsNull() {
				return false
			}
			continue
		}
		if sqlval.Compare(a[i], b[i], sqlval.CollBinary) != 0 {
			return false
		}
	}
	return true
}

func setContains(rows [][]sqlval.Value, row []sqlval.Value) bool {
	for _, r := range rows {
		if rowsSetEqual(r, row) {
			return true
		}
	}
	return false
}

func setDedup(rows [][]sqlval.Value) [][]sqlval.Value {
	var out [][]sqlval.Value
	for _, r := range rows {
		if !setContains(out, r) {
			out = append(out, r)
		}
	}
	return out
}

func setIntersect(left, right [][]sqlval.Value) [][]sqlval.Value {
	var out [][]sqlval.Value
	for _, r := range setDedup(left) {
		if setContains(right, r) {
			out = append(out, r)
		}
	}
	return out
}

func setExcept(left, right [][]sqlval.Value) [][]sqlval.Value {
	var out [][]sqlval.Value
	for _, r := range setDedup(left) {
		if !setContains(right, r) {
			out = append(out, r)
		}
	}
	return out
}
