package engine

// Durable storage: an engine opened with OpenDurable keeps its committed
// state in a page file + WAL managed by internal/storage/pager. After
// every mutating statement the engine serializes its logical state (DDL
// log, rows, options, per-table bookkeeping) into a byte image and
// commits it through the pager — WAL append → fsync → checkpoint. Opening
// recovers: the pager replays its WAL, the engine replays the DDL log to
// rebuild catalog and containers, bulk-installs the rows under their
// original rowids, and rebuilds every index from the heap.
//
// Persistence is deliberately at statement granularity and runs even when
// the statement itself failed: a multi-row INSERT that dies on row 2
// keeps row 1 in memory, and the durable image must track the in-memory
// ground truth exactly or the recovery-equivalence oracle would report
// false divergences. Two canonicalizations are accepted and documented:
// recovery rebuilds indexes from the heap (REINDEX semantics, without the
// uniqueness re-check), and a corruption flag raised together with a
// statement error is persisted with that statement's image.

import (
	"encoding/binary"
	"math"
	"sort"

	"repro/internal/dialect"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/sqlval"
	"repro/internal/storage/pager"
	"repro/internal/xerr"
)

// OpenDurable creates or reopens a durable database in dir. Opening an
// existing database runs crash recovery: WAL replay in the pager, then
// DDL/row reconstruction in the engine.
func OpenDurable(d dialect.Dialect, vfs pager.VFS, dir string, opts ...Option) (*Engine, error) {
	e := Open(d, opts...)
	pg, err := pager.Open(vfs, dir, e.fs)
	if err != nil {
		return nil, err
	}
	e.pg, e.vfs, e.dir = pg, vfs, dir
	if err := e.loadDurable(); err != nil {
		pg.Close()
		return nil, err
	}
	return e, nil
}

// Durable reports whether the engine persists through a pager.
func (e *Engine) Durable() bool { return e.pg != nil }

// PagerStats returns the pager's work counters (zero Stats when the
// engine is purely in-memory).
func (e *Engine) PagerStats() (pager.Stats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pg == nil {
		return pager.Stats{}, false
	}
	return e.pg.Stats(), true
}

// Close checkpoints and closes the pager, leaving the database files on
// disk for a later OpenDurable. In-memory engines close trivially.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pg == nil {
		return nil
	}
	return e.pg.Close()
}

// ArmCrash schedules a simulated power cut at the plan's crash point
// inside the next commit (BeforeSync plans; AfterSync plans need no
// arming). Reports false when the engine is not durable or its VFS
// cannot simulate crashes.
func (e *Engine) ArmCrash(plan pager.CrashPlan) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pg == nil || !e.pg.CanCrash() {
		return false
	}
	e.pg.Arm(plan)
	return true
}

// DisarmCrash cancels an armed crash that has not fired.
func (e *Engine) DisarmCrash() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pg != nil {
		e.pg.Disarm()
	}
}

// CrashRecover simulates a power cut per the plan (a no-op if an armed
// crash already killed the pager mid-commit), then reopens the database
// from the surviving files and runs recovery. The in-memory state is
// rebuilt from disk; outstanding data snapshots are invalidated. A
// returned error means recovery itself failed — for a sound pager that
// is a durability bug, and the recovery oracle reports it.
func (e *Engine) CrashRecover(plan pager.CrashPlan) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pg == nil {
		return xerr.New(xerr.CodeUnsupported, "engine is not durable (open with -storage=pager)")
	}
	if !e.pg.CanCrash() {
		return xerr.New(xerr.CodeUnsupported, "VFS does not support simulated crashes")
	}
	e.pg.Crash(plan)
	pg, err := pager.Open(e.vfs, e.dir, e.fs)
	if err != nil {
		return err
	}
	e.pg = pg
	e.resetLocked()
	return e.loadDurable()
}

// persistLocked serializes the engine state and commits it through the
// pager. Called with e.mu held after every mutating statement.
func (e *Engine) persistLocked() error {
	if err := e.pg.Commit(e.encodeStateLocked()); err != nil {
		return err
	}
	return nil
}

// mutating reports whether a statement can change persistent state.
// Transaction control is handled before the persist path and never
// persists by itself (COMMIT persists through commitTxnLocked).
func mutating(st sqlast.Stmt) bool {
	switch st.(type) {
	case *sqlast.Select, *sqlast.Compound, *sqlast.Explain, *sqlast.Txn:
		return false
	}
	return true
}

// isDDL reports whether a successful statement must be replayed to
// rebuild the catalog on recovery.
func isDDL(st sqlast.Stmt) bool {
	switch st.(type) {
	case *sqlast.CreateTable, *sqlast.CreateIndex, *sqlast.CreateView,
		*sqlast.CreateStats, *sqlast.AlterTable, *sqlast.Drop:
		return true
	}
	return false
}

// Image format (all little-endian, strings length-prefixed):
//
//	magic u32, version u32
//	seq i64, corrupt string, caseSensitiveLike u8
//	ddlLog:  count u32, SQL string each
//	globals: count u32, (name string, value) each — sorted by name
//	tables:  count u32, each sorted by name:
//	  name string, nextRowid i64,
//	  rows: count u32, (rowid i64, nvals u32, value...) each
//	states:  count u32, each sorted by key:
//	  key string, flags u8 (analyzed|hasStats|renamedColumn|bigIntSeen),
//	  updateSeq i64, lastInsert i64, dqHijackCol i64, dqHijackVal string
//
// A value is kind u8 followed by a u64 payload (numeric kinds) or a
// length-prefixed string (text/blob).
const (
	imageMagic   = 0x52505230 // "RPR0"
	imageVersion = 1
)

type imgWriter struct{ buf []byte }

func (w *imgWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *imgWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *imgWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *imgWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *imgWriter) str(s string) { w.u32(uint32(len(s))); w.buf = append(w.buf, s...) }
func (w *imgWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *imgWriter) value(v sqlval.Value) {
	w.u8(uint8(v.Kind()))
	switch v.Kind() {
	case sqlval.KText:
		w.str(v.Str())
	case sqlval.KBlob:
		w.str(v.BlobStr())
	case sqlval.KNull:
	default:
		w.u64(v.Uint64())
	}
}

type imgReader struct {
	buf []byte
	off int
	err error
}

func (r *imgReader) fail() {
	if r.err == nil {
		r.err = xerr.New(xerr.CodeCorrupt, "durable image truncated at byte %d", r.off)
	}
}

func (r *imgReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *imgReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *imgReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *imgReader) i64() int64 { return int64(r.u64()) }

func (r *imgReader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *imgReader) bool() bool { return r.u8() != 0 }

func (r *imgReader) value() sqlval.Value {
	switch sqlval.Kind(r.u8()) {
	case sqlval.KNull:
		return sqlval.Null()
	case sqlval.KInt:
		return sqlval.Int(int64(r.u64()))
	case sqlval.KUint:
		return sqlval.Uint(r.u64())
	case sqlval.KReal:
		return sqlval.Real(math.Float64frombits(r.u64()))
	case sqlval.KText:
		return sqlval.Text(r.str())
	case sqlval.KBlob:
		return sqlval.Blob([]byte(r.str()))
	case sqlval.KBool:
		return sqlval.Bool(r.u64() != 0)
	default:
		r.fail()
		return sqlval.Null()
	}
}

const (
	stAnalyzed = 1 << iota
	stHasStats
	stRenamedColumn
	stBigIntSeen
)

// encodeStateLocked serializes the engine's logical state.
func (e *Engine) encodeStateLocked() []byte {
	w := &imgWriter{buf: make([]byte, 0, 1024)}
	w.u32(imageMagic)
	w.u32(imageVersion)
	w.i64(e.seq)
	w.str(e.corrupt)
	w.bool(e.caseSensitiveLike)

	w.u32(uint32(len(e.ddlLog)))
	for _, sql := range e.ddlLog {
		w.str(sql)
	}

	gnames := make([]string, 0, len(e.globals))
	for name := range e.globals {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	w.u32(uint32(len(gnames)))
	for _, name := range gnames {
		w.str(name)
		w.value(e.globals[name])
	}

	tnames := append([]string(nil), e.cat.TableNames()...)
	sort.Strings(tnames)
	w.u32(uint32(len(tnames)))
	for _, name := range tnames {
		td := e.data[lower(name)]
		w.str(name)
		if td == nil {
			w.i64(1)
			w.u32(0)
			continue
		}
		w.i64(td.NextRowid())
		rows := td.Rows()
		w.u32(uint32(len(rows)))
		for _, r := range rows {
			w.i64(r.Rowid)
			w.u32(uint32(len(r.Vals)))
			for _, v := range r.Vals {
				w.value(v)
			}
		}
	}

	skeys := make([]string, 0, len(e.state))
	for k := range e.state {
		skeys = append(skeys, k)
	}
	sort.Strings(skeys)
	w.u32(uint32(len(skeys)))
	for _, k := range skeys {
		ts := e.state[k]
		w.str(k)
		var flags uint8
		if ts.analyzed {
			flags |= stAnalyzed
		}
		if ts.hasStats {
			flags |= stHasStats
		}
		if ts.renamedColumn {
			flags |= stRenamedColumn
		}
		if ts.bigIntSeen {
			flags |= stBigIntSeen
		}
		w.u8(flags)
		w.i64(ts.updateSeq)
		w.i64(ts.lastInsert)
		w.i64(int64(ts.dqHijackCol))
		w.str(ts.dqHijackVal)
	}
	return w.buf
}

// loadDurable rebuilds the engine from the pager's committed image:
// replay the DDL log through the executor (catalog, views, empty
// containers), bulk-install the rows under their original rowids, rebuild
// every index from the heap, then restore options and bookkeeping.
// Called with e.mu held on a freshly-reset engine.
func (e *Engine) loadDurable() error {
	img, err := e.pg.Load()
	if err != nil {
		return err
	}
	if img == nil {
		return nil // fresh database
	}
	r := &imgReader{buf: img}
	if r.u32() != imageMagic {
		return xerr.New(xerr.CodeCorrupt, "durable image: bad magic")
	}
	if v := r.u32(); v != imageVersion {
		return xerr.New(xerr.CodeCorrupt, "durable image: unsupported version %d", v)
	}
	seq := r.i64()
	corrupt := r.str()
	csLike := r.bool()

	ddl := make([]string, int(r.u32()))
	if r.err != nil {
		return r.err
	}
	for i := range ddl {
		ddl[i] = r.str()
	}
	if r.err != nil {
		return r.err
	}
	e.recovering = true
	for _, src := range ddl {
		stmts, perr := sqlparse.Parse(src, e.d)
		if perr != nil {
			e.recovering = false
			return xerr.New(xerr.CodeCorrupt, "durable image: DDL replay parse: %v", perr)
		}
		for _, st := range stmts {
			if _, xerr2 := e.exec1(st); xerr2 != nil {
				e.recovering = false
				return xerr.New(xerr.CodeCorrupt, "durable image: DDL replay %q: %v", src, xerr2)
			}
		}
	}
	e.recovering = false
	e.ddlLog = ddl

	for i, n := 0, int(r.u32()); i < n && r.err == nil; i++ {
		name := r.str()
		e.globals[name] = r.value()
	}

	for i, n := 0, int(r.u32()); i < n && r.err == nil; i++ {
		name := r.str()
		nextRowid := r.i64()
		nrows := int(r.u32())
		td := e.data[lower(name)]
		if td == nil && nrows > 0 {
			return xerr.New(xerr.CodeCorrupt, "durable image: rows for unknown table %s", name)
		}
		for j := 0; j < nrows && r.err == nil; j++ {
			rowid := r.i64()
			vals := make([]sqlval.Value, int(r.u32()))
			for k := range vals {
				vals[k] = r.value()
			}
			if r.err != nil {
				break
			}
			if _, ok := td.InsertWithRowid(rowid, vals); !ok {
				return xerr.New(xerr.CodeCorrupt, "durable image: duplicate rowid %d in %s", rowid, name)
			}
		}
		if td != nil {
			td.SetNextRowid(nextRowid)
		}
	}

	for i, n := 0, int(r.u32()); i < n && r.err == nil; i++ {
		key := r.str()
		flags := r.u8()
		ts := &tableState{
			analyzed:      flags&stAnalyzed != 0,
			hasStats:      flags&stHasStats != 0,
			renamedColumn: flags&stRenamedColumn != 0,
			bigIntSeen:    flags&stBigIntSeen != 0,
			updateSeq:     r.i64(),
			lastInsert:    0,
			dqHijackCol:   0,
			dqHijackVal:   "",
		}
		ts.lastInsert = r.i64()
		ts.dqHijackCol = int(r.i64())
		ts.dqHijackVal = r.str()
		e.state[key] = ts
	}
	if r.err != nil {
		return r.err
	}

	e.seq = seq
	e.corrupt = corrupt
	e.caseSensitiveLike = csLike
	e.ev.CaseSensitiveLike = csLike

	// Rebuild every index from the installed heaps (REINDEX semantics
	// without the uniqueness re-check — the data already passed it).
	for _, name := range e.cat.TableNames() {
		if err := e.rebuildIndexesOn(name, false); err != nil {
			return err
		}
	}
	return nil
}
