package engine

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/xerr"
)

func TestTxnSanity(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec := func(c *Conn, sql string) *Result {
		r, err := c.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return r
	}
	c1, c2 := e.NewConn(), e.NewConn()
	mustExec(c1, "CREATE TABLE t (a INTEGER)")
	mustExec(c1, "INSERT INTO t VALUES (1)")
	mustExec(c1, "BEGIN")
	mustExec(c1, "INSERT INTO t VALUES (2)")
	// c2 must not see the staged row
	r := mustExec(c2, "SELECT * FROM t")
	if len(r.Rows) != 1 {
		t.Fatalf("c2 sees %d rows, want 1", len(r.Rows))
	}
	// c1 sees its own write
	r = mustExec(c1, "SELECT * FROM t")
	if len(r.Rows) != 2 {
		t.Fatalf("c1 sees %d rows, want 2", len(r.Rows))
	}
	// c2 writing t gets busy
	if _, err := c2.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec("INSERT INTO t VALUES (3)"); !xerr.Is(err, xerr.CodeBusy) {
		t.Fatalf("want busy, got %v", err)
	}
	mustExec(c2, "ROLLBACK")
	mustExec(c1, "COMMIT")
	r = mustExec(c2, "SELECT * FROM t")
	if len(r.Rows) != 2 {
		t.Fatalf("after commit c2 sees %d rows, want 2", len(r.Rows))
	}
	// rollback restores
	mustExec(c1, "BEGIN")
	mustExec(c1, "DELETE FROM t")
	mustExec(c1, "ROLLBACK")
	r = mustExec(c1, "SELECT * FROM t")
	if len(r.Rows) != 2 {
		t.Fatalf("after rollback %d rows, want 2", len(r.Rows))
	}
	// nested begin
	mustExec(c1, "BEGIN")
	if _, err := c1.Exec("BEGIN"); !xerr.Is(err, xerr.CodeTxnState) {
		t.Fatalf("nested begin: %v", err)
	}
	mustExec(c1, "COMMIT")
	if _, err := c1.Exec("COMMIT"); !xerr.Is(err, xerr.CodeTxnState) {
		t.Fatalf("commit outside txn: %v", err)
	}
	// first-committer-wins on read-write conflict
	mustExec(c1, "BEGIN")
	mustExec(c2, "BEGIN")
	mustExec(c1, "SELECT * FROM t")
	mustExec(c1, "INSERT INTO t VALUES (10)")
	mustExec(c2, "SELECT * FROM t")
	mustExec(c1, "COMMIT")
	if _, err := c2.Exec("INSERT INTO t VALUES (11)"); !xerr.Is(err, xerr.CodeBusy) {
		// c1 committed, lock released: insert proceeds
		if err != nil {
			t.Fatalf("c2 insert: %v", err)
		}
	}
	if _, err := c2.Exec("COMMIT"); !xerr.Is(err, xerr.CodeConflict) {
		t.Fatalf("c2 commit should conflict, got %v", err)
	}
	// lost-update fault: both commit
	ef := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.TxnLostUpdate)))
	f1, f2 := ef.NewConn(), ef.NewConn()
	mustExec(f1, "CREATE TABLE t (a INTEGER)")
	mustExec(f1, "BEGIN")
	mustExec(f2, "BEGIN")
	mustExec(f1, "INSERT INTO t VALUES (1)")
	mustExec(f2, "INSERT INTO t VALUES (2)")
	mustExec(f1, "COMMIT")
	mustExec(f2, "COMMIT")
	r = mustExec(f1, "SELECT * FROM t")
	if len(r.Rows) != 1 {
		t.Fatalf("lost-update fault: want 1 surviving row (clobber), got %d", len(r.Rows))
	}
}
