// Streaming hash aggregation and top-K ordering. project (query.go)
// dispatches grouped/aggregate projections here unless hashagg=off:
//
//   - grouping: group membership resolves through a hash table over
//     normalized byte keys instead of a linear keysEqual scan per input row.
//     Key normalization COARSENS group equality (keysEqual-equal rows always
//     share a key; unequal rows may collide on one), so every bucket match
//     is re-verified by the full keysEqual comparison — collisions cost
//     time, never correctness. NULLs key on a sentinel, matching SQL GROUP
//     BY's NULLs-group-together semantics.
//   - aggregation: COUNT/COUNT(*)/SUM/AVG/MIN/MAX/TOTAL fold into per-group
//     streaming accumulators in a single pass over the input. No group
//     retains its combos; only one representative row (the group's first)
//     survives, for HAVING and non-aggregate output columns. Evaluation
//     errors are recorded per (group, column) cell and surfaced during the
//     output pass in the exact (group order, column order, row order) the
//     materialized path would surface them.
//   - ordering: when LIMIT k (+OFFSET) accompanies ORDER BY and k+offset is
//     smaller than the row count, a bounded max-heap keeps the k+offset best
//     rows instead of sorting everything. Stability is preserved by an
//     input-index tiebreak: among sort-key-equal rows, earlier input rows
//     win, exactly like sort.SliceStable.
//
// Emission order is byte-identical to the materialized path: groups emit in
// first-occurrence order, top-K results in full stable-sort order.
package engine

import (
	"math"
	"sort"
	"strings"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

// aggCol is one aggregate output column's shared (cross-group) state: the
// call, its lazily-bound argument program, and the arity/bind errors the
// materialized path would raise per group.
type aggCol struct {
	ci        int // index into the projection's cols
	fc        *sqlast.FuncCall
	name      string // canonical upper-case aggregate name
	op        aggOp  // name as an enum, for the per-row accumulate switch
	countStar bool
	arityErr  error
	// direct short-circuits the compiled program for a bare resolvable
	// column argument on fault-free engines (rel, col into the combo).
	direct   bool
	rel, col int
	bound    bool
	argFn    func() (sqlval.Value, error)
	bindErr  error
}

// bind resolves the argument program (lazily: the materialized path binds
// per group inside the output loop, so zero-group queries never bind).
func (ac *aggCol) bind(x *exprEval) {
	if ac.bound {
		return
	}
	ac.bound = true
	ac.argFn, ac.bindErr = x.valueFn(ac.fc.Args[0])
}

// aggOp is the accumulate dispatch enum (the per-row hot path; string
// switches on the name would re-compare per input row).
type aggOp uint8

// Accumulator operations.
const (
	opCount aggOp = iota
	opMin
	opMax
	opSum
	opTotal
	opAvg
)

// aggOps maps canonical aggregate names onto their accumulate ops.
var aggOps = map[string]aggOp{
	"COUNT": opCount, "MIN": opMin, "MAX": opMax,
	"SUM": opSum, "TOTAL": opTotal, "AVG": opAvg,
}

// aggCell is one (group, aggregate column) accumulator.
type aggCell struct {
	seen    int64 // non-NULL argument count
	isum    int64
	fsum    float64
	allInt  bool
	seeded  bool // null-skip fault seeded this accumulator already
	hasBest bool
	best    sqlval.Value
	err     error // first evaluation error; poisons the cell
}

// hashAggGroup is one group's streaming state: its key, the representative
// (first) combo for HAVING and non-aggregate columns, the row count, and
// one accumulator per aggregate column. Crucially absent: the combos.
type hashAggGroup struct {
	key   []sqlval.Value
	rep   []*rowVals
	n     int64
	cells []aggCell
}

// streamableAgg reports whether every aggregate in the projection is
// expressible as a streaming accumulator. Every aggregate the executor
// accepts currently is (the AST has no DISTINCT-qualified aggregate form);
// the hook exists so inexpressible shapes fall back to the materialized
// path instead of growing accumulator special cases.
func streamableAgg(cols []outCol) bool {
	for _, c := range cols {
		if c.x == nil {
			continue
		}
		if fc, ok := isAggregate(c.x); ok {
			if !aggNames[strings.ToUpper(fc.Name)] {
				return false
			}
		}
	}
	return true
}

// appendAggKey appends one group-key value's normalized component. The
// invariant mirrors appendJoinKey's: keysEqual-equal values (NULLs equal,
// otherwise Compare under CollBinary) must produce byte-identical
// components; the converse need not hold, since bucket matches re-verify.
func appendAggKey(buf []byte, v sqlval.Value) []byte {
	switch {
	case v.IsNull():
		return append(buf, 'n')
	case v.Kind() == sqlval.KText:
		buf = append(buf, 't')
		return append(buf, v.Str()...)
	case v.Kind() == sqlval.KBlob:
		buf = append(buf, 'x')
		return append(buf, v.BlobStr()...)
	default:
		// Numeric (incl. bool): one float rendering, negative zero folded.
		// Distinct huge integers can collide; keysEqual disambiguates.
		return appendKeyFloat(buf, v.AsFloat())
	}
}

// projectGroupedHash is the streaming grouped/aggregate projection.
func (e *Engine) projectGroupedHash(pc *projCtx, combos [][]*rowVals) ([]string, [][]sqlval.Value, error) {
	e.cov.hit("dql.group-by-hash")
	n, rels, x := pc.n, pc.rels, pc.x

	// Fault site (sqlite.hash-agg-collation): TEXT group keys fold through
	// the source column's declared collation instead of binary bytes, and
	// bucket matches skip keysEqual re-verification — NOCASE/RTRIM-equal
	// variants silently collapse into one group (whose representative row is
	// the first variant seen).
	collFault := e.d == dialect.SQLite && e.fs.Has(faults.HashAggCollation)
	keyColls := make([]sqlval.Collation, len(pc.groupKeys))
	if collFault {
		for i, gx := range pc.groupKeys {
			keyColls[i] = sqlval.CollBinary
			if cr, ok := gx.(*sqlast.ColumnRef); ok && !cr.MaybeString {
				if ri, ci, amb := findColumn(rels, cr.Table, cr.Column); ri >= 0 && !amb {
					keyColls[i] = rels[ri].columns[ci].Collate
				}
			}
		}
	}

	// Key and aggregate-argument accessors: a bare resolvable column on a
	// fault-free engine reads its combo slot directly; anything else runs
	// the compiled program (identical machinery to the materialized path).
	directOK := e.fs.Empty()
	directRef := func(gx sqlast.Expr) (ri, ci int, ok bool) {
		cr, isRef := gx.(*sqlast.ColumnRef)
		if !directOK || !isRef || cr.MaybeString {
			return 0, 0, false
		}
		ri, ci, amb := findColumn(rels, cr.Table, cr.Column)
		return ri, ci, ri >= 0 && !amb
	}
	needEval := false
	type keyGetter struct {
		direct   bool
		rel, col int
		fn       func() (sqlval.Value, error)
	}
	keyGets := make([]keyGetter, len(pc.groupKeys))
	for i, gx := range pc.groupKeys {
		if ri, ci, ok := directRef(gx); ok {
			keyGets[i] = keyGetter{direct: true, rel: ri, col: ci}
			continue
		}
		fn, err := x.valueFn(gx)
		if err != nil {
			return nil, nil, err
		}
		keyGets[i] = keyGetter{fn: fn}
		needEval = true
	}

	// Aggregate columns, in projection order. Arity errors are recorded, not
	// raised: the materialized path raises them per surviving group during
	// the output pass, after HAVING filtering.
	var aggCols []aggCol
	aggAt := make([]int, len(pc.cols)) // cols index -> aggCols index (-1: scalar)
	for i := range aggAt {
		aggAt[i] = -1
	}
	for i, c := range pc.cols {
		if c.x == nil {
			continue
		}
		fc, ok := isAggregate(c.x)
		if !ok {
			continue
		}
		ac := aggCol{ci: i, fc: fc, name: strings.ToUpper(fc.Name)}
		ac.op = aggOps[ac.name]
		switch {
		case ac.name == "COUNT" && len(fc.Args) == 0:
			ac.countStar = true
		case len(fc.Args) != 1:
			ac.arityErr = xerr.New(xerr.CodeType, "aggregate %s expects one argument", fc.Name)
		default:
			if ri, ci, ok := directRef(fc.Args[0]); ok {
				ac.direct, ac.rel, ac.col = true, ri, ci
			} else {
				needEval = true
			}
		}
		aggAt[i] = len(aggCols)
		aggCols = append(aggCols, ac)
	}

	// Fault site (sqlite.agg-accumulator-null-skip): the streaming SUM/AVG
	// accumulator seeds itself from a leading NULL as if it were 0 instead
	// of skipping it, so all-NULL inputs aggregate to 0 instead of NULL.
	// Filtered queries only: TLP's partition aggregates hit it, the
	// unfiltered original doesn't.
	nullSkipFault := e.d == dialect.SQLite && e.fs.Has(faults.AggAccumulatorNullSkip) &&
		n.Where != nil

	var groups []*hashAggGroup
	implicit := len(pc.groupKeys) == 0
	if implicit {
		groups = []*hashAggGroup{{rep: make([]*rowVals, len(rels)), cells: make([]aggCell, len(aggCols))}}
	}

	// Group lookup is an open-addressing table over an inline FNV-1a of the
	// normalized key bytes — a map[string] here costs a string conversion
	// plus the runtime's map machinery per input row, which profiles as the
	// single biggest line of the whole grouped pass. Slot values are group
	// index + 1 (0 = empty); matches compare the stored key bytes, then
	// keysEqual exactly like the map version did (hash and even byte
	// equality COARSEN group equality, so both are pre-filters, never the
	// verdict).
	slots := make([]int32, 64)
	mask := uint64(len(slots) - 1)
	var groupHash []uint64
	var groupKeyBytes [][]byte // nil for numeric fast-path groups
	var groupNumBits []uint64  // float bits for numeric fast-path groups
	var groupIsNum []bool
	grow := func() {
		slots = make([]int32, 2*len(slots))
		mask = uint64(len(slots) - 1)
		for gi, h := range groupHash {
			i := h & mask
			for slots[i] != 0 {
				i = (i + 1) & mask
			}
			slots[i] = int32(gi) + 1
		}
	}
	// A single bare-column numeric key skips byte normalization entirely:
	// its canonical form IS the folded float bits (appendKeyFloat), so the
	// bits are hashed and matched directly. Numeric and byte-keyed groups
	// never alias — a numeric value always takes this path, anything else
	// always takes the generic one — and both re-verify with keysEqual.
	fastNum := len(keyGets) == 1 && keyGets[0].direct && !collFault
	var keyBuf []byte
	keyScratch := make([]sqlval.Value, len(pc.groupKeys))
	for _, combo := range combos {
		if needEval {
			x.setRow(combo)
		}
		var g *hashAggGroup
		if implicit {
			g = groups[0]
			if g.n == 0 {
				g.rep = combo
			}
		} else {
			generic := true
			if fastNum {
				var v sqlval.Value
				kg := &keyGets[0]
				if kg.rel < len(combo) {
					if rv := combo[kg.rel]; rv != nil && kg.col < len(rv.vals) {
						v = rv.vals[kg.col]
					}
				}
				if k := v.Kind(); k != sqlval.KNull && k != sqlval.KText && k != sqlval.KBlob {
					generic = false
					keyScratch[0] = v
					f := v.AsFloat()
					if f == 0 {
						f = 0 // fold negative zero, like appendKeyFloat
					}
					bits := math.Float64bits(f)
					if f != f {
						bits = math.Float64bits(math.NaN())
					}
					// murmur3 finalizer: the xor-shift before each multiply
					// pushes the exponent/mantissa-top bits (the only ones
					// that vary across small integers) down into the slot
					// index; a plain multiply-then-shift leaves the low bits
					// constant and chains every small-int key into one slot.
					h := bits
					h ^= h >> 33
					h *= 0xFF51AFD7ED558CCD
					h ^= h >> 33
					h *= 0xC4CEB9FE1A85EC53
					h ^= h >> 33
					slot := h & mask
					for {
						s := slots[slot]
						if s == 0 {
							break
						}
						gi := s - 1
						// Identical Value structs short-circuit the keysEqual
						// re-verify; the call remains for cross-kind equality
						// (2 vs 2.0) and beyond-2^53 ints whose folded float
						// bits collide.
						if groupIsNum[gi] && groupNumBits[gi] == bits {
							if gk := groups[gi]; gk.key[0] == v || keysEqual(gk.key, keyScratch) {
								g = gk
								break
							}
						}
						slot = (slot + 1) & mask
					}
					if g == nil {
						g = &hashAggGroup{
							key:   []sqlval.Value{v},
							rep:   combo,
							cells: make([]aggCell, len(aggCols)),
						}
						slots[slot] = int32(len(groups)) + 1
						groups = append(groups, g)
						groupHash = append(groupHash, h)
						groupKeyBytes = append(groupKeyBytes, nil)
						groupNumBits = append(groupNumBits, bits)
						groupIsNum = append(groupIsNum, true)
						if 2*len(groups) > len(slots) {
							grow()
						}
					}
				}
			}
			if generic {
				keyBuf = keyBuf[:0]
				for i := range keyGets {
					var v sqlval.Value
					if kg := &keyGets[i]; kg.direct {
						// readDirect, inlined: this is the per-row hot path.
						if rv := combo[kg.rel]; rv != nil && kg.col < len(rv.vals) {
							v = rv.vals[kg.col]
						}
					} else {
						var err error
						v, err = kg.fn()
						if err != nil {
							return nil, nil, err
						}
					}
					keyScratch[i] = v
					if collFault && v.Kind() == sqlval.KText {
						keyBuf = append(keyBuf, 't')
						keyBuf = append(keyBuf, sqlval.CollKey(v.Str(), keyColls[i])...)
					} else {
						keyBuf = appendAggKey(keyBuf, v)
					}
					keyBuf = append(keyBuf, 0)
				}
				h := uint64(14695981039346656037) // FNV-1a
				for _, b := range keyBuf {
					h ^= uint64(b)
					h *= 1099511628211
				}
				slot := h & mask
				for {
					s := slots[slot]
					if s == 0 {
						break
					}
					gi := s - 1
					if groupHash[gi] == h && !groupIsNum[gi] &&
						string(groupKeyBytes[gi]) == string(keyBuf) &&
						(collFault || keysEqual(groups[gi].key, keyScratch)) {
						g = groups[gi]
						break
					}
					slot = (slot + 1) & mask
				}
				if g == nil {
					g = &hashAggGroup{
						key:   append([]sqlval.Value(nil), keyScratch...),
						rep:   combo,
						cells: make([]aggCell, len(aggCols)),
					}
					slots[slot] = int32(len(groups)) + 1
					groups = append(groups, g)
					groupHash = append(groupHash, h)
					groupKeyBytes = append(groupKeyBytes, append([]byte(nil), keyBuf...))
					groupNumBits = append(groupNumBits, 0)
					groupIsNum = append(groupIsNum, false)
					if 2*len(groups) > len(slots) {
						grow()
					}
				}
			}
		}
		g.n++
		for ai := range aggCols {
			ac := &aggCols[ai]
			if ac.countStar || ac.arityErr != nil {
				continue
			}
			cell := &g.cells[ai]
			if cell.err != nil {
				continue
			}
			var v sqlval.Value
			if ac.direct {
				// readDirect, inlined: this is the per-row hot path.
				if ac.rel < len(combo) && combo[ac.rel] != nil && ac.col < len(combo[ac.rel].vals) {
					v = combo[ac.rel].vals[ac.col]
				} else {
					v = sqlval.Null()
				}
			} else {
				ac.bind(x)
				if ac.bindErr != nil {
					continue
				}
				var err error
				v, err = ac.argFn()
				if err != nil {
					cell.err = err
					continue
				}
			}
			e.accumulate(ac, cell, v, nullSkipFault)
		}
	}

	// Output pass: groups in first-occurrence order, HAVING on the
	// representative row, cells finalized in column order — the same
	// (group, column) error order as the materialized path.
	var havingTest func() (sqlval.TriBool, error)
	if n.Having != nil {
		var err error
		havingTest, err = x.boolFn(n.Having)
		if err != nil {
			return nil, nil, err
		}
	}
	var rows [][]sqlval.Value
	for _, g := range groups {
		if havingTest != nil {
			x.setRow(g.rep)
			tb, err := havingTest()
			if err != nil {
				return nil, nil, err
			}
			if tb != sqlval.TriTrue {
				continue
			}
		}
		row := make([]sqlval.Value, len(pc.cols))
		for i, c := range pc.cols {
			if c.x == nil {
				if g.rep[c.rel] == nil || c.col >= len(g.rep[c.rel].vals) {
					row[i] = sqlval.Null()
				} else {
					row[i] = g.rep[c.rel].vals[c.col]
				}
				continue
			}
			if ai := aggAt[i]; ai >= 0 {
				v, err := e.finalizeAgg(&aggCols[ai], &g.cells[ai], g.n, x)
				if err != nil {
					return nil, nil, err
				}
				row[i] = v
				continue
			}
			x.setRow(g.rep)
			v, err := pc.colFns[i]()
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return pc.outNames, rows, nil
}

// accumulate folds one non-finalized argument value into a cell, mirroring
// aggregate()'s per-value semantics exactly.
func (e *Engine) accumulate(ac *aggCol, cell *aggCell, v sqlval.Value, nullSkipFault bool) {
	if v.IsNull() {
		// Fault site (sqlite.agg-accumulator-null-skip), see above.
		if nullSkipFault && (ac.op == opSum || ac.op == opAvg) &&
			cell.seen == 0 && !cell.seeded {
			cell.seeded = true
			cell.seen = 1
		}
		return
	}
	switch ac.op {
	case opCount:
		cell.seen++
	case opMin, opMax:
		cell.seen++
		if !cell.hasBest {
			cell.hasBest, cell.best = true, v
			return
		}
		c := sqlval.Compare(v, cell.best, sqlval.CollBinary)
		if (ac.op == opMin && c < 0) || (ac.op == opMax && c > 0) {
			cell.best = v
		}
	case opSum, opTotal, opAvg:
		if e.d == dialect.Postgres && !v.IsNumeric() {
			cell.err = xerr.New(xerr.CodeType, "%s(%s)", ac.fc.Name, v.Kind())
			return
		}
		if cell.seen == 0 && !cell.seeded {
			cell.allInt = ac.op == opSum
		}
		cell.seen++
		var num sqlval.Value
		switch v.Kind() {
		case sqlval.KInt, sqlval.KUint, sqlval.KReal, sqlval.KBool:
			num = v
		default:
			num = sqlval.Real(0)
			if parsed, ok := sqlval.TextToNumeric(v.Display()); ok {
				num = parsed
			}
		}
		if num.Kind() == sqlval.KInt || num.Kind() == sqlval.KBool {
			cell.isum += num.Int64()
			cell.fsum += float64(num.Int64())
		} else {
			cell.allInt = false
			cell.fsum += num.AsFloat()
		}
	}
}

// finalizeAgg produces one aggregate output value from its accumulator,
// replicating aggregate()'s control flow — including the agg-empty-group
// fault, the arity error, and lazy argument binding for zero-row groups
// (whose compile errors the materialized path still raises).
func (e *Engine) finalizeAgg(ac *aggCol, cell *aggCell, groupRows int64, x *exprEval) (sqlval.Value, error) {
	e.cov.hit("dql.aggregate." + ac.name)
	// Fault site (sqlite.agg-empty-group) — mirrored from aggregate() so
	// the fault matrix is path-independent.
	if e.d == dialect.SQLite && e.fs.Has(faults.AggEmptyGroup) && groupRows == 0 {
		switch ac.name {
		case "COUNT":
			return sqlval.Int(1), nil
		case "SUM", "MIN", "MAX":
			return sqlval.Int(0), nil
		}
	}
	if ac.countStar {
		return sqlval.Int(groupRows), nil
	}
	if ac.arityErr != nil {
		return sqlval.Null(), ac.arityErr
	}
	if !ac.direct {
		ac.bind(x)
		if ac.bindErr != nil {
			return sqlval.Null(), ac.bindErr
		}
	}
	if cell.err != nil {
		return sqlval.Null(), cell.err
	}
	switch ac.name {
	case "COUNT":
		return sqlval.Int(cell.seen), nil
	case "MIN", "MAX":
		if !cell.hasBest {
			return sqlval.Null(), nil
		}
		return cell.best, nil
	case "SUM", "TOTAL", "AVG":
		if cell.seen == 0 {
			if ac.name == "TOTAL" {
				return sqlval.Real(0), nil
			}
			return sqlval.Null(), nil
		}
		switch ac.name {
		case "AVG":
			return sqlval.Real(cell.fsum / float64(cell.seen)), nil
		case "TOTAL":
			return sqlval.Real(cell.fsum), nil
		default:
			if cell.allInt {
				return sqlval.Int(cell.isum), nil
			}
			return sqlval.Real(cell.fsum), nil
		}
	}
	return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "aggregate %s", ac.fc.Name)
}

// orderByTopK is the bounded-heap ORDER BY + LIMIT path: it keeps the
// k = limit+offset best rows in a max-heap (root = worst kept) and returns
// them in full stable-sort order, so the applyLimit slice that follows is
// byte-identical to sorting everything. handled=false defers to the full
// sort — non-constant or ill-typed LIMIT/OFFSET (whose errors applyLimit
// raises with identical precedence), or k too large to profit.
func (e *Engine) orderByTopK(n *sqlast.Select, rels []*relation, rows [][]sqlval.Value) (bool, [][]sqlval.Value, error) {
	keyIdx, err := e.resolveOrderKeys(n, rels)
	if err != nil {
		return false, nil, err
	}
	lv, err := e.constEval(n.Limit)
	if err != nil || lv.Kind() != sqlval.KInt || lv.Int64() < 0 {
		return false, rows, nil
	}
	k64 := lv.Int64()
	if n.Offset != nil {
		ov, err := e.constEval(n.Offset)
		if err != nil || ov.Kind() != sqlval.KInt || ov.Int64() < 0 {
			return false, rows, nil
		}
		k64 += ov.Int64()
	}
	if k64 <= 0 || k64 >= int64(len(rows)) {
		return false, rows, nil
	}
	k := int(k64)
	e.cov.hit("dql.order-by")
	e.cov.hit("dql.order-topk")

	// keyCmp orders two rows by the sort keys alone (0 on a full tie).
	keyCmp := func(a, b int32) int {
		for i, ki := range keyIdx {
			c := sqlval.Compare(rows[a][ki], rows[b][ki], sqlval.CollBinary)
			if n.OrderBy[i].Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
	// worse is the heap order: a sorts after b (keys, then the input-index
	// tiebreak that preserves sort.SliceStable's stability).
	worse := func(a, b int32) bool {
		if c := keyCmp(a, b); c != 0 {
			return c > 0
		}
		return a > b
	}

	tieFault := e.d == dialect.MySQL && e.fs.Has(faults.TopKHeapBoundary)
	heap := make([]int32, 0, k)
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && worse(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && worse(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i := 0; i < len(rows); i++ {
		cand := int32(i)
		if len(heap) < k {
			heap = append(heap, cand)
			for c := len(heap) - 1; c > 0; {
				p := (c - 1) / 2
				if !worse(heap[c], heap[p]) {
					break
				}
				heap[c], heap[p] = heap[p], heap[c]
				c = p
			}
			continue
		}
		if worse(heap[0], cand) {
			heap[0] = cand
			siftDown()
			continue
		}
		// Fault site (generic.topk-heap-boundary): when a rejected candidate
		// ties with the heap root on every sort key (losing only the
		// stability tiebreak), the root is evicted along with it — the k-th
		// row of the result vanishes.
		if tieFault && keyCmp(cand, heap[0]) == 0 {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) > 0 {
				siftDown()
			}
		}
	}
	sort.Slice(heap, func(a, b int) bool { return worse(heap[b], heap[a]) })
	kept := make([][]sqlval.Value, len(heap))
	for i, ri := range heap {
		kept[i] = rows[ri]
	}
	return true, kept, nil
}
