package dbdriver

import (
	"database/sql"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/faults"
)

func TestDriverRoundTrip(t *testing.T) {
	db, err := sql.Open("pqs", "sqlite")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Pin a single connection: each driver connection is its own
	// in-memory database.
	db.SetMaxOpenConns(1)

	if _, err := db.Exec(`CREATE TABLE t0(c0, c1 TEXT)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`INSERT INTO t0(c0, c1) VALUES (1, 'a'), (NULL, 'b')`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Errorf("RowsAffected = %d", n)
	}

	rowsIter, err := db.Query(`SELECT c0, c1 FROM t0 ORDER BY c1`)
	if err != nil {
		t.Fatal(err)
	}
	defer rowsIter.Close()
	cols, _ := rowsIter.Columns()
	if len(cols) != 2 || cols[0] != "c0" {
		t.Errorf("columns = %v", cols)
	}
	var got []struct {
		c0 sql.NullInt64
		c1 string
	}
	for rowsIter.Next() {
		var r struct {
			c0 sql.NullInt64
			c1 string
		}
		if err := rowsIter.Scan(&r.c0, &r.c1); err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if len(got) != 2 || !got[0].c0.Valid || got[0].c0.Int64 != 1 || got[1].c0.Valid {
		t.Errorf("rows = %+v", got)
	}
}

func TestDriverFaultDSN(t *testing.T) {
	db, err := sql.Open("pqs", "sqlite?fault=sqlite.partial-index-not-null")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	setup := []string{
		`CREATE TABLE t0(c0)`,
		`CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL`,
		`INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)`,
	}
	for _, s := range setup {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.Query(`SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if n != 3 {
		t.Errorf("Listing 1 through database/sql: %d rows, want 3 (bug present)", n)
	}
}

// Repeated fault= parameters must merge into one set rather than the last
// one silently winning.
func TestDriverRepeatedFaultParamsMerge(t *testing.T) {
	conn, err := (&Driver{}).Open("sqlite?fault=sqlite.partial-index-not-null&fault=sqlite.rtrim-compare")
	if err != nil {
		t.Fatal(err)
	}
	eng := conn.(interface{ Engine() *engine.Engine }).Engine()
	fs := eng.Faults()
	if fs == nil {
		t.Fatal("no fault set on engine")
	}
	for _, f := range []faults.Fault{faults.PartialIndexNotNull, faults.RtrimCompare} {
		if !fs.Has(f) {
			t.Errorf("fault %s lost from merged set (have %v)", f, fs.List())
		}
	}
}

// planner=off must map to engine.WithoutPlanner: every access path is a
// full scan.
func TestDriverPlannerOffDSN(t *testing.T) {
	conn, err := (&Driver{}).Open("sqlite?planner=off")
	if err != nil {
		t.Fatal(err)
	}
	eng := conn.(interface{ Engine() *engine.Engine }).Engine()
	for _, s := range []string{
		`CREATE TABLE t0(c0 INT)`,
		`CREATE INDEX i0 ON t0(c0)`,
		`INSERT INTO t0 VALUES (1), (2), (3)`,
	} {
		if _, err := eng.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := eng.PlanSQL(`SELECT * FROM t0 WHERE c0 = 2`)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if strings.Contains(strings.ToUpper(p.Detail()), "INDEX") {
			t.Errorf("planner=off still chose an index path: %s", p.Detail())
		}
	}
	if _, err := (&Driver{}).Open("sqlite?planner=sideways"); err == nil {
		t.Error("bad planner value should fail")
	}
}

// The driver reports per-column scan types inferred from the result.
func TestDriverColumnTypeScanType(t *testing.T) {
	db, err := sql.Open("pqs", "sqlite")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)
	for _, s := range []string{
		`CREATE TABLE t0(c0 INT, c1 TEXT, c2 REAL, c3)`,
		`INSERT INTO t0 VALUES (1, 'a', 1.5, NULL)`,
	} {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.Query(`SELECT c0, c1, c2, c3 FROM t0`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cts, err := rows.ColumnTypes()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"int64", "string", "float64", ""}
	for i, ct := range cts {
		got := ct.ScanType().String()
		if want[i] == "" {
			// All-NULL column: scan type is the dynamic interface{}.
			if got != "interface {}" {
				t.Errorf("col %d scan type = %s, want interface{}", i, got)
			}
			continue
		}
		if got != want[i] {
			t.Errorf("col %d scan type = %s, want %s", i, got, want[i])
		}
	}
	// Release the pinned connection before issuing more statements: the
	// pool has one connection and an open Rows holds it.
	rows.Close()

	// A dynamically-typed column whose rows disagree on kind must report
	// interface{} so ScanType-allocated destinations never fail mid-scan.
	if _, err := db.Exec(`CREATE TABLE t1(c0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t1 VALUES (1), ('a')`); err != nil {
		t.Fatal(err)
	}
	mixed, err := db.Query(`SELECT c0 FROM t1`)
	if err != nil {
		t.Fatal(err)
	}
	defer mixed.Close()
	mcts, err := mixed.ColumnTypes()
	if err != nil {
		t.Fatal(err)
	}
	if got := mcts[0].ScanType().String(); got != "interface {}" {
		t.Errorf("mixed-kind column scan type = %s, want interface{}", got)
	}
}

func TestDriverErrors(t *testing.T) {
	if _, err := (&Driver{}).Open("oracle"); err == nil {
		t.Error("unknown dialect should fail")
	}
	if _, err := (&Driver{}).Open("sqlite?fault=nope"); err == nil {
		t.Error("unknown fault should fail")
	}
	if _, err := (&Driver{}).Open("sqlite?rows=3"); err == nil {
		t.Error("unknown parameter should fail")
	}
	db, _ := sql.Open("pqs", "postgres")
	defer db.Close()
	db.SetMaxOpenConns(1)
	if _, err := db.Exec(`SELECT * FROM missing`); err == nil {
		t.Error("missing table should error")
	}
}

// TestDriverTransactions drives real BEGIN/COMMIT/ROLLBACK through the
// database/sql Tx surface: committed writes stick, rolled-back writes
// vanish, and writes staged inside an open Tx stay invisible to reads on
// the same snapshot-isolated session until Commit.
func TestDriverTransactions(t *testing.T) {
	db, err := sql.Open("pqs", "sqlite")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)
	if _, err := db.Exec(`CREATE TABLE t0(c0 INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t0(c0) VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if _, err := tx.Exec(`INSERT INTO t0(c0) VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM t0`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("after commit COUNT = %d, want 2", n)
	}

	tx, err = db.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if _, err := tx.Exec(`DELETE FROM t0`); err != nil {
		t.Fatal(err)
	}
	if err := tx.QueryRow(`SELECT COUNT(*) FROM t0`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("inside tx after DELETE COUNT = %d, want 0", n)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if err := db.QueryRow(`SELECT COUNT(*) FROM t0`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("after rollback COUNT = %d, want 2", n)
	}
}

// TestDriverStorageDSN opens a durable connection through the DSN
// storage parameter, checks it works, and checks Close removes the
// connection's database directory.
func TestDriverStorageDSN(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)

	db, err := sql.Open("pqs", "sqlite?storage=pager")
	if err != nil {
		t.Fatal(err)
	}
	db.SetMaxOpenConns(1)
	if _, err := db.Exec(`CREATE TABLE t0(c0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t0(c0) VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM t0`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("COUNT(*) = %d, want 2", n)
	}
	dirs, _ := filepath.Glob(filepath.Join(tmp, "pager-*"))
	if len(dirs) != 1 {
		t.Fatalf("expected 1 pager dir while open, found %v", dirs)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dirs[0]); !os.IsNotExist(err) {
		t.Errorf("pager dir %s survived Close", dirs[0])
	}

	// storage=memory is the explicit default; anything else is rejected.
	mem, err := sql.Open("pqs", "mysql?storage=memory")
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if _, err := mem.Exec(`CREATE TABLE t0(c0 INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := (&Driver{}).Open("sqlite?storage=tape"); err == nil {
		t.Error("unknown storage mode should fail")
	}
}
