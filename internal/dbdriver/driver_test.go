package dbdriver

import (
	"database/sql"
	"testing"
)

func TestDriverRoundTrip(t *testing.T) {
	db, err := sql.Open("pqs", "sqlite")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Pin a single connection: each driver connection is its own
	// in-memory database.
	db.SetMaxOpenConns(1)

	if _, err := db.Exec(`CREATE TABLE t0(c0, c1 TEXT)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`INSERT INTO t0(c0, c1) VALUES (1, 'a'), (NULL, 'b')`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Errorf("RowsAffected = %d", n)
	}

	rowsIter, err := db.Query(`SELECT c0, c1 FROM t0 ORDER BY c1`)
	if err != nil {
		t.Fatal(err)
	}
	defer rowsIter.Close()
	cols, _ := rowsIter.Columns()
	if len(cols) != 2 || cols[0] != "c0" {
		t.Errorf("columns = %v", cols)
	}
	var got []struct {
		c0 sql.NullInt64
		c1 string
	}
	for rowsIter.Next() {
		var r struct {
			c0 sql.NullInt64
			c1 string
		}
		if err := rowsIter.Scan(&r.c0, &r.c1); err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if len(got) != 2 || !got[0].c0.Valid || got[0].c0.Int64 != 1 || got[1].c0.Valid {
		t.Errorf("rows = %+v", got)
	}
}

func TestDriverFaultDSN(t *testing.T) {
	db, err := sql.Open("pqs", "sqlite?fault=sqlite.partial-index-not-null")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	setup := []string{
		`CREATE TABLE t0(c0)`,
		`CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL`,
		`INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)`,
	}
	for _, s := range setup {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.Query(`SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if n != 3 {
		t.Errorf("Listing 1 through database/sql: %d rows, want 3 (bug present)", n)
	}
}

func TestDriverErrors(t *testing.T) {
	if _, err := (&Driver{}).Open("oracle"); err == nil {
		t.Error("unknown dialect should fail")
	}
	if _, err := (&Driver{}).Open("sqlite?fault=nope"); err == nil {
		t.Error("unknown fault should fail")
	}
	if _, err := (&Driver{}).Open("sqlite?rows=3"); err == nil {
		t.Error("unknown parameter should fail")
	}
	db, _ := sql.Open("pqs", "postgres")
	defer db.Close()
	db.SetMaxOpenConns(1)
	if _, err := db.Exec(`SELECT * FROM missing`); err == nil {
		t.Error("missing table should error")
	}
	if _, err := db.Begin(); err == nil {
		t.Error("transactions should be unsupported")
	}
}
