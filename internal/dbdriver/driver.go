// Package dbdriver exposes the engine substrate through database/sql, so
// example code reads like ordinary Go database code. The DSN selects the
// dialect profile and, optionally, injected faults, planner mode, and
// expression-compilation mode:
//
//	db, _ := sql.Open("pqs", "sqlite")
//	db, _ := sql.Open("pqs", "mysql?fault=mysql.double-negation,mysql.set-option-error")
//	db, _ := sql.Open("pqs", "sqlite?planner=off")
//	db, _ := sql.Open("pqs", "sqlite?compile=off")
//	db, _ := sql.Open("pqs", "sqlite?hashjoin=off")
//	db, _ := sql.Open("pqs", "sqlite?hashagg=off")
//	db, _ := sql.Open("pqs", "sqlite?storage=pager")
//
// storage=pager opens the connection on the durable page-file + WAL
// backend in a private temp directory (removed when the connection
// closes) instead of the default in-memory heap.
//
// Repeated fault= parameters merge into one set. The driver supports
// plain statements only (no placeholders). Transactions are real:
// db.Begin() opens a snapshot-isolated engine transaction, Commit makes
// its writes visible (and durable, under storage=pager) with
// first-committer-wins conflict detection, and Rollback discards them.
package dbdriver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"os"
	"reflect"
	"strings"

	"repro/internal/dialect"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/sqlval"
	"repro/internal/storage/pager"
)

func init() {
	sql.Register("pqs", &Driver{})
}

// Driver implements driver.Driver for the engine substrate.
type Driver struct{}

// Open parses the DSN and opens a fresh in-memory database.
func (*Driver) Open(dsn string) (driver.Conn, error) {
	name, query, _ := strings.Cut(dsn, "?")
	d, err := dialect.Parse(strings.TrimSpace(name))
	if err != nil {
		return nil, err
	}
	var opts []engine.Option
	var storage string
	var fs *faults.Set // repeated fault= parameters merge into one set
	if query != "" {
		for _, kv := range strings.Split(query, "&") {
			k, v, _ := strings.Cut(kv, "=")
			switch k {
			case "fault":
				if fs == nil {
					fs = faults.NewSet()
				}
				for _, fname := range strings.Split(v, ",") {
					f := faults.Fault(strings.TrimSpace(fname))
					if _, ok := faults.Lookup(f); !ok {
						return nil, fmt.Errorf("pqs driver: unknown fault %q", fname)
					}
					fs.Enable(f)
				}
			case "planner":
				switch v {
				case "off":
					opts = append(opts, engine.WithoutPlanner())
				case "on": // the default; accepted for symmetry
				default:
					return nil, fmt.Errorf("pqs driver: planner=%q (want on or off)", v)
				}
			case "compile":
				switch v {
				case "off":
					opts = append(opts, engine.WithoutCompiledEval())
				case "on": // the default; accepted for symmetry
				default:
					return nil, fmt.Errorf("pqs driver: compile=%q (want on or off)", v)
				}
			case "hashjoin":
				switch v {
				case "off":
					opts = append(opts, engine.WithoutHashJoin())
				case "on": // the default; accepted for symmetry
				default:
					return nil, fmt.Errorf("pqs driver: hashjoin=%q (want on or off)", v)
				}
			case "hashagg":
				switch v {
				case "off":
					opts = append(opts, engine.WithoutHashAgg())
				case "on": // the default; accepted for symmetry
				default:
					return nil, fmt.Errorf("pqs driver: hashagg=%q (want on or off)", v)
				}
			case "storage":
				switch v {
				case "memory": // the default; accepted for symmetry
				case "pager":
					storage = v
				default:
					return nil, fmt.Errorf("pqs driver: storage=%q (want memory or pager)", v)
				}
			default:
				return nil, fmt.Errorf("pqs driver: unknown DSN parameter %q", k)
			}
		}
	}
	if fs != nil {
		opts = append(opts, engine.WithFaults(fs))
	}
	if storage == "pager" {
		dir, err := os.MkdirTemp("", "pager-")
		if err != nil {
			return nil, fmt.Errorf("pqs driver: temp dir: %v", err)
		}
		e, err := engine.OpenDurable(d, pager.NewSim(pager.OS()), dir, opts...)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		return &conn{e: e, ownDir: dir}, nil
	}
	return &conn{e: engine.Open(d, opts...)}, nil
}

type conn struct {
	e *engine.Engine
	// ownDir is a durable connection's private database directory,
	// removed on Close.
	ownDir string
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{c: c, query: query}, nil
}

// Close implements driver.Conn: durable connections close their pager
// and remove their private database directory.
func (c *conn) Close() error {
	err := c.e.Close()
	if c.ownDir != "" {
		if rerr := os.RemoveAll(c.ownDir); err == nil {
			err = rerr
		}
		c.ownDir = ""
	}
	return err
}

// Begin implements driver.Conn with a real transaction: the engine's
// session executes BEGIN, and the returned Tx's Commit/Rollback execute
// COMMIT/ROLLBACK. Statements run through database/sql's Tx between the
// two stage against the transaction's private snapshot and become visible
// (and durable, under storage=pager) only at Commit.
func (c *conn) Begin() (driver.Tx, error) {
	if _, err := c.e.Exec("BEGIN"); err != nil {
		return nil, err
	}
	return tx{c: c}, nil
}

type tx struct{ c *conn }

// Commit implements driver.Tx. It fails with a conflict error when a
// concurrent commit invalidated the transaction's snapshot
// (first-committer-wins); the transaction is then already rolled back.
func (t tx) Commit() error {
	_, err := t.c.e.Exec("COMMIT")
	return err
}

// Rollback implements driver.Tx.
func (t tx) Rollback() error {
	_, err := t.c.e.Exec("ROLLBACK")
	return err
}

// Engine exposes the underlying engine for white-box assertions in tests.
func (c *conn) Engine() *engine.Engine { return c.e }

var (
	_ driver.QueryerContext = (*conn)(nil)
	_ driver.ExecerContext  = (*conn)(nil)
)

// ExecContext implements driver.ExecerContext.
func (c *conn) ExecContext(_ context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("pqs driver: placeholders are not supported")
	}
	res, err := c.e.Exec(query)
	if err != nil {
		return nil, err
	}
	return execResult{affected: int64(res.RowsAffected)}, nil
}

// QueryContext implements driver.QueryerContext.
func (c *conn) QueryContext(_ context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("pqs driver: placeholders are not supported")
	}
	res, err := c.e.Exec(query)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

type stmt struct {
	c     *conn
	query string
}

// Close implements driver.Stmt.
func (s *stmt) Close() error { return nil }

// NumInput implements driver.Stmt; placeholders are unsupported.
func (s *stmt) NumInput() int { return 0 }

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.c.ExecContext(context.Background(), s.query, nil)
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.c.QueryContext(context.Background(), s.query, nil)
}

type execResult struct{ affected int64 }

// LastInsertId implements driver.Result.
func (execResult) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("pqs driver: LastInsertId is not supported")
}

// RowsAffected implements driver.Result.
func (r execResult) RowsAffected() (int64, error) { return r.affected, nil }

type rows struct {
	res *engine.Result
	pos int
}

var _ driver.RowsColumnTypeScanType = (*rows)(nil)

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.res.Columns }

// ColumnTypeScanType implements driver.RowsColumnTypeScanType. The engine
// is dynamically typed per value, so the type is inferred from the
// column's non-NULL values; a column whose rows disagree on kind (legal
// in the SQLite profile, and unsigned overflow demotes to text) reports
// interface{} so ScanType-allocated destinations never fail mid-scan.
func (r *rows) ColumnTypeScanType(index int) reflect.Type {
	var found reflect.Type
	for _, row := range r.res.Rows {
		if index >= len(row) {
			break
		}
		t := scanTypeOf(row[index])
		if t == nil {
			continue // NULL: compatible with any scan type
		}
		if found == nil {
			found = t
			continue
		}
		if found != t {
			return reflect.TypeOf((*interface{})(nil)).Elem()
		}
	}
	if found != nil {
		return found
	}
	return reflect.TypeOf((*interface{})(nil)).Elem()
}

// scanTypeOf mirrors toDriverValue's mapping (nil for NULL).
func scanTypeOf(v sqlval.Value) reflect.Type {
	switch v.Kind() {
	case sqlval.KInt:
		return reflect.TypeOf(int64(0))
	case sqlval.KUint:
		if v.Uint64() <= 1<<63-1 {
			return reflect.TypeOf(int64(0))
		}
		return reflect.TypeOf("")
	case sqlval.KReal:
		return reflect.TypeOf(float64(0))
	case sqlval.KText:
		return reflect.TypeOf("")
	case sqlval.KBlob:
		return reflect.TypeOf([]byte(nil))
	case sqlval.KBool:
		return reflect.TypeOf(false)
	default:
		return nil
	}
}

// Close implements driver.Rows.
func (r *rows) Close() error { return nil }

// Next implements driver.Rows.
func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.pos]
	r.pos++
	for i := range dest {
		if i < len(row) {
			dest[i] = toDriverValue(row[i])
		} else {
			dest[i] = nil
		}
	}
	return nil
}

func toDriverValue(v sqlval.Value) driver.Value {
	switch v.Kind() {
	case sqlval.KNull:
		return nil
	case sqlval.KInt:
		return v.Int64()
	case sqlval.KUint:
		// database/sql has no unsigned type; render large values as text.
		if v.Uint64() <= 1<<63-1 {
			return int64(v.Uint64())
		}
		return v.Literal()
	case sqlval.KReal:
		return v.Float64()
	case sqlval.KText:
		return v.Str()
	case sqlval.KBlob:
		return v.Bytes() // already a fresh copy
	case sqlval.KBool:
		return v.BoolVal()
	default:
		return nil
	}
}
