package fuzz

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
)

func TestFuzzerSoundness(t *testing.T) {
	for _, d := range dialect.All {
		for seed := int64(0); seed < 30; seed++ {
			f := New(Config{Dialect: d, Seed: seed})
			bug, err := f.RunDatabase()
			if err != nil {
				t.Fatalf("[%s] seed %d: %v", d, seed, err)
			}
			if bug != nil {
				t.Fatalf("[%s] seed %d: fuzzer false positive: %s", d, seed, bug.Message)
			}
		}
	}
}

// The fuzzer catches error-oracle and crash faults...
func TestFuzzerFindsErrorFaults(t *testing.T) {
	found := false
	for seed := int64(0); seed < 150 && !found; seed++ {
		f := New(Config{
			Dialect: dialect.SQLite,
			Seed:    seed,
			Faults:  faults.NewSet(faults.VacuumCorrupt),
		})
		bug, err := f.RunDatabase()
		if err != nil {
			t.Fatal(err)
		}
		if bug != nil {
			if bug.Oracle == faults.OracleContainment {
				t.Fatalf("fuzzer cannot produce containment detections, got %s", bug.Message)
			}
			found = true
		}
	}
	if !found {
		t.Error("fuzzer should find VACUUM corruption")
	}
}

// ...but is blind to logic faults: the engine silently returns wrong rows
// and the fuzzer has no oracle to notice (the paper's central claim).
func TestFuzzerBlindToLogicFaults(t *testing.T) {
	for _, f := range []faults.Fault{faults.PartialIndexNotNull, faults.DoubleNegation} {
		info, _ := faults.Lookup(f)
		for seed := int64(0); seed < 100; seed++ {
			fz := New(Config{Dialect: info.Dialect, Seed: seed, Faults: faults.NewSet(f)})
			bug, err := fz.RunDatabase()
			if err != nil {
				t.Fatal(err)
			}
			if bug != nil && bug.Oracle == faults.OracleContainment {
				t.Fatalf("fuzzer somehow detected logic fault %s", f)
			}
		}
	}
}
