// Package fuzz is the SQLsmith/AFL-style baseline: it generates random
// statements and queries but has no containment oracle — it can observe
// only unexpected errors and crashes. The paper's central claim is that
// such fuzzers cannot find logic bugs; the baseline-comparison benchmark
// measures exactly that against the injected-fault corpus.
package fuzz

import (
	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/sqlast"
	"repro/internal/sut"
	"repro/internal/xerr"
)

// Config parameterizes a fuzzing session.
type Config struct {
	Dialect      dialect.Dialect
	Seed         int64
	Faults       *faults.Set
	QueriesPerDB int
	// Backend names the sut driver ("" = sut.DefaultBackend).
	Backend string
	// Storage selects the session's storage mode ("" or "memory" =
	// in-memory, "pager" = durable page file + WAL).
	Storage string
	// WireFidelity renders and reparses each generated statement instead
	// of the ExecAST fast path, restoring the fuzzer's parser coverage.
	WireFidelity bool
	// NoCompile disables the engine's compiled expression programs
	// (tree-walk evaluation; the -no-compile escape hatch).
	NoCompile bool
	// NoHashJoin pins every join level to the nested loop (the
	// -no-hashjoin escape hatch).
	NoHashJoin bool
	// NoHashAgg forces materialized grouping and full sorts (the
	// -no-hashagg escape hatch).
	NoHashAgg bool
}

// Fuzzer drives random statements at the engine and watches for crashes
// and never-expected errors.
type Fuzzer struct {
	cfg   Config
	rnd   *gen.Rand
	stats core.Stats
}

// New creates a fuzzer.
func New(cfg Config) *Fuzzer {
	if cfg.QueriesPerDB <= 0 {
		cfg.QueriesPerDB = 30
	}
	return &Fuzzer{
		cfg: cfg,
		rnd: gen.NewRand(cfg.Dialect, cfg.Seed),
	}
}

// Stats exposes work counters.
func (f *Fuzzer) Stats() core.Stats { return f.stats }

// RunDatabase runs one database lifecycle. Detections carry the same Bug
// shape as PQS, but the Oracle is always error or segfault — never
// containment.
func (f *Fuzzer) RunDatabase() (*core.Bug, error) {
	db, err := sut.Open(f.cfg.Backend, sut.Session{
		Dialect:      f.cfg.Dialect,
		Faults:       f.cfg.Faults,
		WireFidelity: f.cfg.WireFidelity,
		NoCompile:    f.cfg.NoCompile,
		NoHashJoin:   f.cfg.NoHashJoin,
		NoHashAgg:    f.cfg.NoHashAgg,
		Storage:      f.cfg.Storage,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	f.stats.Databases++
	// Like core's trace type, statements are kept as ASTs and rendered
	// only when a detection needs a reproduction trace.
	var trace []sqlast.Stmt
	renderTrace := func() []string { return core.RenderStmts(trace, f.cfg.Dialect) }

	apply := func(st sqlast.Stmt) error {
		trace = append(trace, st)
		f.stats.Statements++
		_, err := db.ExecAST(st)
		switch v := oracle.Classify(st, err, f.cfg.Dialect); v {
		case oracle.VerdictBug, oracle.VerdictCrash:
			code, _ := xerr.CodeOf(err)
			return &fuzzSignal{bug: &core.Bug{
				Oracle:     oracle.OracleFor(v),
				DetectedBy: "fuzz",
				Message:    err.Error(),
				Code:       code,
				Trace:      renderTrace(),
			}}
		case oracle.VerdictArtifact:
			f.stats.Artifacts++
		}
		return nil
	}

	sg := &gen.StateGen{Rnd: f.rnd, E: db.Introspect()}
	if err := sg.BuildDatabase(apply); err != nil {
		if sig, ok := err.(*fuzzSignal); ok {
			return sig.bug, nil
		}
		return nil, err
	}

	// Random queries with arbitrary (unrectified) conditions: result sets
	// are never validated — the fuzzer has no idea what they should be.
	for q := 0; q < f.cfg.QueriesPerDB; q++ {
		sel := f.randomQuery(db.Introspect(), sg)
		if sel == nil {
			continue
		}
		if err := apply(sel); err != nil {
			if sig, ok := err.(*fuzzSignal); ok {
				return sig.bug, nil
			}
			return nil, err
		}
		// Drop successful queries from the trace like PQS does.
		trace = trace[:len(trace)-1]
		f.stats.Queries++
	}
	return nil, nil
}

type fuzzSignal struct{ bug *core.Bug }

// Error implements the error interface.
func (s *fuzzSignal) Error() string { return "fuzz detection: " + s.bug.Message }

func (f *Fuzzer) randomQuery(intro sut.Introspection, sg *gen.StateGen) sqlast.Stmt {
	tables := intro.Tables()
	if len(tables) == 0 {
		return nil
	}
	table := tables[f.rnd.Intn(len(tables))]
	info, err := intro.Describe(table)
	if err != nil || len(info.Columns) == 0 {
		return nil
	}
	var cols []gen.ColumnPick
	for _, c := range info.Columns {
		cols = append(cols, gen.ColumnPick{Table: table, Column: c})
	}
	eg := &gen.ExprGen{Rnd: f.rnd, Cols: cols, Hints: sg.Hints, MaxDepth: 3}
	// Occasionally issue a compound SELECT: fuzzing covers UNION [ALL]
	// execution the same way the TLP oracle's recombination does.
	if f.rnd.Bool(0.15) {
		return gen.CompoundSelect(f.rnd, eg, table, info)
	}
	sel := &sqlast.Select{
		Cols:     []sqlast.ResultCol{{Star: true}},
		From:     []sqlast.TableRef{{Name: table}},
		Distinct: f.rnd.Bool(0.3),
	}
	if f.rnd.Bool(0.8) {
		sel.Where = eg.Generate()
	}
	// Ordered/limited shapes route through the top-K heap (small k) or the
	// full sort; the fuzzer never validates result sets, so position
	// semantics cost it nothing and buy executor coverage.
	if f.rnd.Bool(0.35) {
		gen.OrderLimit(f.rnd, table, info, sel)
	}
	return sel
}
