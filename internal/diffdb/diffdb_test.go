package diffdb

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
)

func pairs() [][2]dialect.Dialect {
	return [][2]dialect.Dialect{
		{dialect.SQLite, dialect.MySQL},
		{dialect.SQLite, dialect.Postgres},
		{dialect.MySQL, dialect.Postgres},
	}
}

// Differential soundness: with no faults, the common core agrees across
// every dialect pair. This is the hard part of RAGS-style testing — the
// generator must avoid every semantic divergence between dialects.
func TestDifferentialSoundness(t *testing.T) {
	for _, p := range pairs() {
		for seed := int64(0); seed < 40; seed++ {
			s := New(Config{Pair: p, Seed: seed})
			m, err := s.RunDatabase()
			if err != nil {
				t.Fatalf("%v seed %d: %v", p, seed, err)
			}
			if m != nil {
				t.Fatalf("%v seed %d: spurious mismatch on %q: %s left=%v right=%v",
					p, seed, m.Query, m.Err, m.LeftRes, m.RightRes)
			}
		}
	}
}

// Differential testing catches common-core logic faults...
func TestDifferentialFindsCommonCoreFault(t *testing.T) {
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		s := New(Config{
			Pair:   [2]dialect.Dialect{dialect.MySQL, dialect.SQLite},
			Seed:   seed,
			Faults: faults.NewSet(faults.InsertVisibility),
		})
		m, err := s.RunDatabase()
		if err != nil {
			t.Fatal(err)
		}
		found = m != nil
	}
	if !found {
		t.Error("differential testing should catch the insert-visibility fault")
	}
}

// ...but is blind to dialect-specific faults, which its common core cannot
// express (partial indexes, IS NOT, WITHOUT ROWID, collations, ...).
func TestDifferentialBlindToDialectFaults(t *testing.T) {
	for _, f := range []faults.Fault{faults.PartialIndexNotNull, faults.NocaseUniqueIndex} {
		for seed := int64(0); seed < 60; seed++ {
			s := New(Config{
				Pair:   [2]dialect.Dialect{dialect.SQLite, dialect.Postgres},
				Seed:   seed,
				Faults: faults.NewSet(f),
			})
			m, err := s.RunDatabase()
			if err != nil {
				t.Fatal(err)
			}
			if m != nil {
				t.Fatalf("differential testing unexpectedly detected %s: %q", f, m.Query)
			}
		}
	}
}
