// Package diffdb is the RAGS-style differential-testing baseline (Slutz
// 1998): the same common-core SQL runs on two dialect engines and result
// sets are compared. Its reach is limited to the small common core of the
// dialects — the paper's motivation for PQS — so it cannot exercise
// partial indexes, collations, WITHOUT ROWID, storage engines,
// inheritance, IS NOT, or implicit coercions, where most bugs live.
package diffdb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/sqlval"
	"repro/internal/sut"
	_ "repro/internal/sut/memengine" // default backend
)

// Config parameterizes a differential session.
type Config struct {
	// Pair is the two dialects compared. Faults apply to Pair[0] only.
	Pair         [2]dialect.Dialect
	Seed         int64
	Faults       *faults.Set
	QueriesPerDB int
	Rows         int
	// Backend names the sut driver both sides run on ("" =
	// sut.DefaultBackend).
	Backend string
}

// Mismatch is a differential detection.
type Mismatch struct {
	Query    string
	Trace    []string
	LeftRes  []string
	RightRes []string
	// Err records an execution divergence (one side erroring).
	Err string
}

// Session runs the differential baseline.
type Session struct {
	cfg Config
	rnd *gen.Rand
	// Statements counts work for throughput comparison.
	Statements int
}

// New creates a session.
func New(cfg Config) *Session {
	if cfg.QueriesPerDB <= 0 {
		cfg.QueriesPerDB = 30
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 6
	}
	// The common-core generator must avoid dialect-specific constructs,
	// so it runs under the stricter dialect's rules.
	return &Session{cfg: cfg, rnd: gen.NewRand(dialect.Postgres, cfg.Seed)}
}

// RunDatabase builds one common-core database on both engines and compares
// query results. It returns the first mismatch, or nil.
func (s *Session) RunDatabase() (*Mismatch, error) {
	left, err := sut.Open(s.cfg.Backend, sut.Session{Dialect: s.cfg.Pair[0], Faults: s.cfg.Faults})
	if err != nil {
		return nil, err
	}
	defer left.Close()
	right, err := sut.Open(s.cfg.Backend, sut.Session{Dialect: s.cfg.Pair[1]})
	if err != nil {
		return nil, err
	}
	defer right.Close()
	var trace []string

	apply := func(sql string) error {
		trace = append(trace, sql)
		s.Statements += 2
		_, errL := left.Exec(sql)
		_, errR := right.Exec(sql)
		if (errL == nil) != (errR == nil) {
			return &diffSignal{m: &Mismatch{
				Query: sql,
				Trace: append([]string(nil), trace...),
				Err:   fmt.Sprintf("execution divergence: left=%v right=%v", errL, errR),
			}}
		}
		return nil
	}

	// Common-core schema: INT and TEXT columns only, no constraints
	// beyond NOT NULL, no indexes, no dialect clauses.
	nTables := 1 + s.rnd.Intn(2)
	for t := 0; t < nTables; t++ {
		nCols := 1 + s.rnd.Intn(3)
		var defs []string
		for c := 0; c < nCols; c++ {
			typ := "INT"
			if s.rnd.Bool(0.4) {
				typ = "TEXT"
			}
			defs = append(defs, fmt.Sprintf("c%d %s", c, typ))
		}
		sql := fmt.Sprintf("CREATE TABLE t%d(%s)", t, strings.Join(defs, ", "))
		if err := apply(sql); err != nil {
			return signalOf(err)
		}
		rows := 1 + s.rnd.Intn(s.cfg.Rows)
		for r := 0; r < rows; r++ {
			var vals []string
			for c := 0; c < nCols; c++ {
				vals = append(vals, s.commonValue(strings.Contains(defs[c], "TEXT")))
			}
			ins := fmt.Sprintf("INSERT INTO t%d VALUES (%s)", t, strings.Join(vals, ", "))
			if err := apply(ins); err != nil {
				return signalOf(err)
			}
		}
	}

	for q := 0; q < s.cfg.QueriesPerDB; q++ {
		query := s.commonQuery(left.Introspect())
		if query == "" {
			continue
		}
		trace = append(trace, query)
		s.Statements += 2
		resL, errL := left.Query(query)
		resR, errR := right.Query(query)
		if (errL == nil) != (errR == nil) {
			return &Mismatch{
				Query: query,
				Trace: append([]string(nil), trace...),
				Err:   fmt.Sprintf("execution divergence: left=%v right=%v", errL, errR),
			}, nil
		}
		if errL != nil {
			trace = trace[:len(trace)-1]
			continue
		}
		l, r := canon(resL.Rows), canon(resR.Rows)
		if !equalStrings(l, r) {
			return &Mismatch{
				Query:    query,
				Trace:    append([]string(nil), trace...),
				LeftRes:  l,
				RightRes: r,
			}, nil
		}
		trace = trace[:len(trace)-1]
	}
	return nil, nil
}

type diffSignal struct{ m *Mismatch }

// Error implements the error interface.
func (d *diffSignal) Error() string { return "differential mismatch" }

func signalOf(err error) (*Mismatch, error) {
	if sig, ok := err.(*diffSignal); ok {
		return sig.m, nil
	}
	return nil, err
}

// commonValue draws values whose semantics agree across dialects:
// lowercase-only text (MySQL's case-insensitive default collation would
// otherwise diverge from the others) and moderate integers (no overflow
// divergence).
func (s *Session) commonValue(isText bool) string {
	if s.rnd.Bool(0.15) {
		return "NULL"
	}
	if isText {
		pool := []string{"''", "'a'", "'b'", "'ab'", "'x y'", "'0'"}
		return pool[s.rnd.Intn(len(pool))]
	}
	pool := []int64{0, 1, -1, 2, 5, 10, 100, -7}
	return fmt.Sprintf("%d", pool[s.rnd.Intn(len(pool))])
}

// commonQuery builds a query from the dialects' common core: comparisons
// composed with AND/OR/NOT, LEFT/INNER JOIN, DISTINCT, no dialect
// keywords.
func (s *Session) commonQuery(intro sut.Introspection) string {
	tables := intro.Tables()
	if len(tables) == 0 {
		return ""
	}
	t0 := tables[s.rnd.Intn(len(tables))]
	info, err := intro.Describe(t0)
	if err != nil || len(info.Columns) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.rnd.Bool(0.3) {
		b.WriteString("DISTINCT ")
	}
	b.WriteString("* FROM ")
	b.WriteString(t0)
	if len(tables) > 1 && s.rnd.Bool(0.4) {
		t1 := tables[(s.rnd.Intn(len(tables)-1)+1+indexOf(tables, t0))%len(tables)]
		if t1 != t0 {
			join := " JOIN "
			if s.rnd.Bool(0.5) {
				join = " LEFT JOIN "
			}
			info1, err := intro.Describe(t1)
			// Join keys must share a type category, or the strictly-typed
			// dialect would diverge by erroring.
			if err == nil && len(info1.Columns) > 0 &&
				isTextType(info.Columns[0].TypeName) == isTextType(info1.Columns[0].TypeName) {
				b.WriteString(join)
				b.WriteString(t1)
				fmt.Fprintf(&b, " ON (%s.%s = %s.%s)", t0, info.Columns[0].Name, t1, info1.Columns[0].Name)
			}
		}
	}
	if s.rnd.Bool(0.8) {
		col := info.Columns[s.rnd.Intn(len(info.Columns))]
		b.WriteString(" WHERE ")
		b.WriteString(s.commonPredicate(t0, col.Name, isTextType(col.TypeName), 0))
	}
	return b.String()
}

func isTextType(typeName string) bool {
	return strings.Contains(strings.ToUpper(typeName), "TEXT")
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return 0
}

func (s *Session) commonPredicate(table, col string, isText bool, depth int) string {
	if depth < 2 && s.rnd.Bool(0.4) {
		op := "AND"
		if s.rnd.Bool(0.5) {
			op = "OR"
		}
		return fmt.Sprintf("(%s %s %s)",
			s.commonPredicate(table, col, isText, depth+1), op, s.commonPredicate(table, col, isText, depth+1))
	}
	if s.rnd.Bool(0.2) {
		return fmt.Sprintf("(NOT %s)", s.commonPredicate(table, col, isText, depth+1))
	}
	ops := []string{"=", "<", ">", "<=", ">=", "!="}
	if s.rnd.Bool(0.25) {
		return fmt.Sprintf("(%s.%s IS NULL)", table, col)
	}
	v := s.commonValue(isText)
	if v == "NULL" {
		v = "0"
		if isText {
			v = "'a'"
		}
	}
	return fmt.Sprintf("(%s.%s %s %s)", table, col, ops[s.rnd.Intn(len(ops))], v)
}

// canon renders result rows as sorted canonical strings (differential
// comparison is order-insensitive, like RAGS).
func canon(rows [][]sqlval.Value) []string {
	out := make([]string, 0, len(rows))
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			// Numeric canonicalization: 1 and 1.0 agree across engines.
			if v.IsNumeric() {
				parts[i] = fmt.Sprintf("%g", v.AsFloat())
			} else {
				parts[i] = v.String()
			}
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
