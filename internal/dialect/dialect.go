// Package dialect enumerates the SQL dialect profiles emulated by the
// engine substrate. Each profile mirrors the semantic family of one of the
// three DBMS tested in the PQS paper (SQLite, MySQL, PostgreSQL): dynamic
// typing and affinity for SQLite, silent numeric coercion and unsigned
// integers for MySQL, and strict typing for PostgreSQL.
package dialect

import "fmt"

// Dialect identifies one of the emulated SQL dialect profiles.
type Dialect uint8

const (
	// SQLite emulates SQLite's dynamic typing: column types are advisory
	// (affinity), any value fits any column, booleans are integers, and
	// expressions of any type may appear in boolean context.
	SQLite Dialect = iota
	// MySQL emulates MySQL's coercion-heavy semantics: strings convert
	// silently to numbers in numeric context, unsigned integer types
	// exist, and `||` is logical OR rather than concatenation.
	MySQL
	// Postgres emulates PostgreSQL's strict typing: WHERE requires a
	// boolean expression and few implicit conversions are performed.
	Postgres
)

// All lists every dialect, in the order the paper discusses them.
var All = []Dialect{SQLite, MySQL, Postgres}

// String returns the lowercase dialect name used on CLI flags.
func (d Dialect) String() string {
	switch d {
	case SQLite:
		return "sqlite"
	case MySQL:
		return "mysql"
	case Postgres:
		return "postgres"
	default:
		return fmt.Sprintf("dialect(%d)", uint8(d))
	}
}

// DisplayName returns the name used in report tables, matching the paper's
// capitalization.
func (d Dialect) DisplayName() string {
	switch d {
	case SQLite:
		return "SQLite"
	case MySQL:
		return "MySQL"
	case Postgres:
		return "PostgreSQL"
	default:
		return d.String()
	}
}

// Parse converts a CLI name into a Dialect.
func Parse(s string) (Dialect, error) {
	switch s {
	case "sqlite":
		return SQLite, nil
	case "mysql":
		return MySQL, nil
	case "postgres", "postgresql", "pg":
		return Postgres, nil
	}
	return SQLite, fmt.Errorf("dialect: unknown dialect %q", s)
}

// ImplicitBool reports whether the dialect converts arbitrary expressions
// to booleans in boolean context (true for SQLite and MySQL, false for
// Postgres, which requires the root of a condition to be boolean-typed).
func (d Dialect) ImplicitBool() bool { return d != Postgres }

// ConcatIsOr reports whether `||` is logical OR (MySQL default) rather than
// string concatenation (SQLite, PostgreSQL).
func (d Dialect) ConcatIsOr() bool { return d == MySQL }

// HasUnsigned reports whether the dialect supports unsigned integer column
// types (MySQL only).
func (d Dialect) HasUnsigned() bool { return d == MySQL }

// HasIsNotValue reports whether `x IS NOT y` is allowed between arbitrary
// values (SQLite); MySQL and PostgreSQL restrict IS to TRUE/FALSE/NULL.
func (d Dialect) HasIsNotValue() bool { return d == SQLite }

// LikeCaseInsensitive reports whether LIKE ignores ASCII case by default.
func (d Dialect) LikeCaseInsensitive() bool { return d != Postgres }

// DivZeroError reports whether division by zero raises an error (Postgres)
// instead of yielding NULL (SQLite, MySQL).
func (d Dialect) DivZeroError() bool { return d == Postgres }
