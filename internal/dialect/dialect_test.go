package dialect

import "testing"

func TestParseAndString(t *testing.T) {
	cases := map[string]Dialect{
		"sqlite": SQLite, "mysql": MySQL, "postgres": Postgres,
		"postgresql": Postgres, "pg": Postgres,
	}
	for s, want := range cases {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := Parse("oracle"); err == nil {
		t.Error("unknown dialect should fail")
	}
	if SQLite.String() != "sqlite" || Postgres.DisplayName() != "PostgreSQL" {
		t.Error("naming wrong")
	}
}

func TestFeatureFlags(t *testing.T) {
	if !SQLite.ImplicitBool() || !MySQL.ImplicitBool() || Postgres.ImplicitBool() {
		t.Error("ImplicitBool flags wrong")
	}
	if !MySQL.ConcatIsOr() || SQLite.ConcatIsOr() {
		t.Error("ConcatIsOr flags wrong")
	}
	if !MySQL.HasUnsigned() || SQLite.HasUnsigned() {
		t.Error("HasUnsigned flags wrong")
	}
	if !SQLite.HasIsNotValue() || MySQL.HasIsNotValue() {
		t.Error("HasIsNotValue flags wrong")
	}
	if !SQLite.LikeCaseInsensitive() || Postgres.LikeCaseInsensitive() {
		t.Error("LikeCaseInsensitive flags wrong")
	}
	if !Postgres.DivZeroError() || SQLite.DivZeroError() {
		t.Error("DivZeroError flags wrong")
	}
	if len(All) != 3 {
		t.Error("All should list three dialects")
	}
}
