// Package faults defines the injectable-bug registry that substitutes for
// the real, unknown DBMS bugs of the paper. Each fault is a deterministic,
// individually-toggleable behaviour deviation transcribed from one of the
// paper's published bug listings or bug-class descriptions. A campaign
// enables one fault, runs PQS until an oracle fires, and scores the
// detection — giving the reproduction a measurable ground truth.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/dialect"
)

// Fault identifies one injectable bug.
type Fault string

// Oracle names the test oracle expected to detect a fault, matching the
// paper's Table 3 columns.
type Oracle string

// Oracle kinds.
const (
	OracleContainment Oracle = "contains"
	OracleError       Oracle = "error"
	OracleCrash       Oracle = "segfault"
	// OracleNoREC and OracleTLP mark faults only the metamorphic oracles
	// (the NoREC/TLP follow-on work in the same research lineage) can
	// observe: whole-result-set deviations PQS's single tracked pivot row
	// is structurally blind to.
	OracleNoREC Oracle = "norec"
	OracleTLP   Oracle = "tlp"
	// OracleRecovery marks durability faults only the recovery-equivalence
	// oracle can observe: they deviate between what the pager claims is
	// durably committed and what a crash-then-recover cycle actually
	// restores, which no query-result oracle ever sees.
	OracleRecovery Oracle = "recovery"
	// OracleSerializability marks isolation faults only the serializability
	// oracle can observe: they deviate between an interleaved multi-session
	// history and every equivalent serial order, which no single-session
	// oracle ever executes.
	OracleSerializability Oracle = "serializability"
)

// Class groups faults the way Section 4 of the paper groups bugs.
type Class string

// Bug classes from the paper's DBMS-specific overviews.
const (
	ClassIndex        Class = "index"        // index/lookup bugs (partial, collated, skip-scan)
	ClassOptimization Class = "optimization" // incorrect rewrite/optimization
	ClassTyping       Class = "typing"       // affinity/coercion/unsigned bugs
	ClassCorruption   Class = "corruption"   // database-state corruption (error oracle)
	ClassMaintenance  Class = "maintenance"  // VACUUM/REINDEX/REPAIR/CHECK/options
	ClassCrash        Class = "crash"        // simulated SEGFAULTs
	ClassSemantics    Class = "semantics"    // dialect-specific semantic bugs
	ClassDurability   Class = "durability"   // pager/WAL crash-recovery bugs
	ClassIsolation    Class = "isolation"    // transaction-isolation bugs
)

// Info is the registry metadata for one fault.
type Info struct {
	ID      Fault
	Dialect dialect.Dialect
	Class   Class
	// Oracle is the oracle expected to catch this fault.
	Oracle Oracle
	// Logic reports whether this is a logic bug (wrong result set) that a
	// crash-oriented fuzzer cannot observe — the paper's central claim.
	Logic bool
	// Paper cites the listing or section the fault is transcribed from.
	Paper string
	// Desc is a one-line description.
	Desc string
}

// SQLite-dialect faults.
const (
	// PartialIndexNotNull reproduces Listing 1: a partial index with a
	// `c NOT NULL` predicate is used for `c IS NOT <literal>` on the
	// incorrect assumption that the predicate is implied.
	PartialIndexNotNull Fault = "sqlite.partial-index-not-null"
	// NocaseUniqueIndex reproduces Listing 4: a NOCASE index on a
	// WITHOUT ROWID table's PK dedups case-variant rows.
	NocaseUniqueIndex Fault = "sqlite.nocase-unique-index"
	// RtrimCompare reproduces Listing 5: RTRIM collation mishandles the
	// shorter-is-prefix case during index equality lookup.
	RtrimCompare Fault = "sqlite.rtrim-compare"
	// SkipScanDistinct reproduces Listing 6: the skip-scan optimization
	// drops rows under DISTINCT after ANALYZE.
	SkipScanDistinct Fault = "sqlite.skip-scan-distinct"
	// LikeAffinityOpt reproduces Listing 7: the LIKE-to-equality
	// optimization misfires on columns with non-TEXT affinity.
	LikeAffinityOpt Fault = "sqlite.like-affinity-opt"
	// TextIntSubtract reproduces Listing 2: TEXT minus a huge integer
	// goes through float and loses precision.
	TextIntSubtract Fault = "sqlite.text-int-subtract"
	// RealPKCorrupt reproduces Listing 10: UPDATE OR REPLACE on a REAL
	// primary key corrupts the database image.
	RealPKCorrupt Fault = "sqlite.real-pk-corrupt"
	// ReindexUnique reproduces the REINDEX bugs of §4.4: REINDEX
	// recomputes a collated unique index with the wrong collation and
	// reports a spurious UNIQUE violation.
	ReindexUnique Fault = "sqlite.reindex-unique"
	// DoubleQuoteIndex reproduces Listing 8: a double-quoted string in
	// an index definition is rebound as a column after RENAME.
	DoubleQuoteIndex Fault = "sqlite.double-quote-index"
	// CaseSensitiveLikePragma reproduces Listing 9: flipping
	// case_sensitive_like then VACUUM leaves a LIKE expression index
	// inconsistent with the schema.
	CaseSensitiveLikePragma Fault = "sqlite.case-sensitive-like-pragma"
	// IsNotNullOpt: `NOT (x IS NULL)` is rewritten to TRUE for indexed
	// columns (an invented member of the §4.4 optimization class).
	IsNotNullOpt Fault = "sqlite.is-not-null-opt"
	// CollateIndexOrder: an index declared with a non-BINARY collation
	// is built in BINARY order, so range scans miss rows.
	CollateIndexOrder Fault = "sqlite.collate-index-order"
	// AffinityCompare: comparisons against INTEGER-affinity columns
	// skip applying affinity to the constant side.
	AffinityCompare Fault = "sqlite.affinity-compare"
	// RowidAliasCrash: resolving the rowid alias after RENAME COLUMN
	// dereferences a stale slot and crashes.
	RowidAliasCrash Fault = "sqlite.rowid-alias-crash"
	// RangeScanBoundary: the planner's index range scan treats inclusive
	// bounds as exclusive, dropping rows that sit exactly on a range
	// boundary (§4.4 optimization class: off-by-one in the seek target).
	RangeScanBoundary Fault = "sqlite.range-scan-boundary"
	// StaleIndexAfterUpdate: UPDATE rewrites the heap row but leaves the
	// index entries untouched, so index-driven access paths miss updated
	// rows (§4.4 class: stale index state).
	StaleIndexAfterUpdate Fault = "sqlite.stale-index-after-update"
	// PlannerCollationConfusion: the planner serves a collation-qualified
	// equality with an index ordered under a different collation, so the
	// lookup misses collation-equal key variants (§4.4 class: wrong index
	// chosen for the comparison collation).
	PlannerCollationConfusion Fault = "sqlite.planner-collation-confusion"

	// Metamorphic-only faults: each is gated on a query shape PQS never
	// generates (UNION ALL compounds, aggregates, star projections), so
	// the pivot-containment oracle is structurally blind to all four.

	// NullPartitionDrop: inside a UNION ALL chain, an arm whose WHERE root
	// is an IS NULL test contributes no rows — TLP's third partition (`p
	// IS NULL`) silently vanishes from the recombination.
	NullPartitionDrop Fault = "sqlite.null-partition-drop"
	// UnionAllDedup: UNION ALL deduplicates its concatenation the way
	// UNION does, dropping duplicate rows that must be preserved.
	UnionAllDedup Fault = "sqlite.union-all-dedup"
	// AggEmptyGroup: an aggregate whose filtered input is empty
	// materializes a phantom row — COUNT reports 1, SUM/MIN/MAX report 0
	// instead of NULL.
	AggEmptyGroup Fault = "sqlite.agg-empty-group"
	// NorecCountMismatch: a star-projection SELECT with a WHERE clause
	// drops its first matching row — exactly the optimized-query shape
	// NoREC compares against the unoptimized predicate projection.
	NorecCountMismatch Fault = "sqlite.norec-count-mismatch"

	// Hash-join faults (PR 8): each lives inside the hash-join operator,
	// so it only fires on join levels the planner routes through the hash
	// path — and vanishes entirely under hashjoin=off.

	// HashJoinCollation: the hash key builder skips collation
	// canonicalization, so NOCASE/RTRIM-equal join-key variants land in
	// different buckets and their matches silently vanish (§4.4
	// collation class, transplanted into the join operator).
	HashJoinCollation Fault = "sqlite.hash-join-collation"
	// HashJoinNullKey: NULL join keys bucket under a shared sentinel and
	// skip residual verification, so NULL spuriously equals NULL in
	// filtered queries — extra rows PQS's containment check is
	// structurally blind to.
	HashJoinNullKey Fault = "sqlite.hash-join-null-key"

	// Hash-aggregation faults (PR 10): each lives inside the streaming
	// hash-aggregation / top-K operators, so it only fires on queries the
	// planner routes through those paths — and vanishes entirely under
	// hashagg=off.

	// HashAggCollation: the hash-aggregation key builder folds TEXT group
	// keys through the source column's declared collation and skips the
	// full-comparison re-verification of bucket matches, so BINARY-distinct
	// NOCASE/RTRIM variants collapse into one group (§4.4 collation class,
	// transplanted into the aggregation operator).
	HashAggCollation Fault = "sqlite.hash-agg-collation"
	// AggAccumulatorNullSkip: the streaming SUM/AVG accumulator seeds
	// itself from a leading NULL as if it were 0 instead of skipping it,
	// flipping all-NULL aggregates from NULL to 0 in filtered queries —
	// exactly the null-ness deviation TLP's aggregate recombination checks.
	AggAccumulatorNullSkip Fault = "sqlite.agg-accumulator-null-skip"
)

// MySQL-dialect faults.
const (
	// MemoryEngineCast reproduces Listing 11: the MEMORY engine
	// evaluates CAST(... AS UNSIGNED) comparisons incorrectly.
	MemoryEngineCast Fault = "mysql.memory-engine-cast"
	// UnsignedCompare: comparing an UNSIGNED column with a negative
	// constant coerces the constant to unsigned (§4.5 class).
	UnsignedCompare Fault = "mysql.unsigned-compare"
	// NullSafeEqRange reproduces Listing 12: `<=>` against a constant
	// wider than the column type yields FALSE instead of comparing.
	NullSafeEqRange Fault = "mysql.null-safe-eq-range"
	// DoubleNegation reproduces Listing 13: NOT(NOT x) is folded to x,
	// which is wrong for non-boolean integers.
	DoubleNegation Fault = "mysql.double-negation"
	// SetOptionError reproduces Listing 3: setting a global option
	// fails with "Incorrect arguments to SET" on a deterministic subset
	// of values standing in for the paper's nondeterminism.
	SetOptionError Fault = "mysql.set-option-error"
	// CheckTableCrash reproduces Listing 14 / CVE-2019-2879: CHECK
	// TABLE ... FOR UPGRADE on a table with an expression index crashes.
	CheckTableCrash Fault = "mysql.check-table-crash"
	// TextDoubleBool: small doubles stored in TEXT columns evaluate to
	// FALSE in boolean context (§4.5 value-range class).
	TextDoubleBool Fault = "mysql.text-double-bool"
	// RepairTableTruncate: REPAIR TABLE drops the highest-rowid row and
	// reports corruption on the next integrity check.
	RepairTableTruncate Fault = "mysql.repair-table-truncate"
	// TinyintRangeClamp: out-of-range TINYINT comparisons clamp the
	// constant before comparing (§4.5 value-range class).
	TinyintRangeClamp Fault = "mysql.tinyint-range-clamp"
)

// PostgreSQL-dialect faults.
const (
	// InheritanceGroupBy reproduces Listing 15: GROUP BY collapses
	// parent/child rows that share the parent's PK value.
	InheritanceGroupBy Fault = "postgres.inheritance-group-by"
	// StatsBitmapset reproduces Listing 16: extended statistics plus an
	// expression index trip "negative bitmapset member not allowed".
	StatsBitmapset Fault = "postgres.stats-bitmapset"
	// IndexNullValue reproduces Listing 17: an index built after an
	// UPDATE raises "found unexpected null value in index".
	IndexNullValue Fault = "postgres.index-null-value"
	// VacuumOverflow reproduces Listing 18: VACUUM FULL re-evaluates an
	// expression index and fails with "integer out of range".
	VacuumOverflow Fault = "postgres.vacuum-overflow"
	// BoolIndexScan: a partial index on a boolean expression is
	// consulted with inverted polarity.
	BoolIndexScan Fault = "postgres.bool-index-scan"
	// StrictCastCrash: the planner crashes on a nested cast inside an
	// index expression (stand-in for the §4.6 crash duplicates).
	StrictCastCrash Fault = "postgres.strict-cast-crash"
	// LeftJoinDrop: LEFT JOIN behaves as INNER JOIN and drops unmatched
	// left rows (join-semantics class).
	LeftJoinDrop Fault = "postgres.left-join-drop"
	// HashLeftJoinDrop: the hash LEFT JOIN forgets to NULL-extend
	// unmatched preserved combos in filtered queries — they vanish
	// instead of surviving with NULLs (join-semantics class, hash-path
	// variant of left-join-drop that only TLP's filtered partitions see).
	HashLeftJoinDrop Fault = "postgres.hash-left-join-drop"
)

// Cross-dialect faults (injected into shared executor code; each campaign
// still runs them under a specific dialect).
const (
	// WhereTrueDrop: the row-filter loop skips the first matching row
	// when the WHERE clause's root is an OR over an indexed column.
	WhereTrueDrop Fault = "generic.where-true-drop"
	// DistinctCollation: DISTINCT dedups TEXT values under NOCASE even
	// when the column collation is BINARY.
	DistinctCollation Fault = "generic.distinct-collation"
	// JoinPredicatePushdown: a WHERE predicate referencing only the
	// right join table is pushed below the join and also filters
	// left-table rows.
	JoinPredicatePushdown Fault = "generic.join-predicate-pushdown"
	// OrderByLimitDrop: ORDER BY + LIMIT N returns N-1 rows when a sort
	// key contains NULL.
	OrderByLimitDrop Fault = "generic.order-by-limit-drop"
	// VacuumCorrupt: VACUUM breaks the storage checksum, so the next
	// statement reports a malformed database image.
	VacuumCorrupt Fault = "generic.vacuum-corrupt"
	// InsertVisibility: the most recently inserted row is invisible to
	// the next full-scan query.
	InsertVisibility Fault = "generic.insert-visibility"
	// TopKHeapBoundary: the bounded-heap top-K ORDER BY/LIMIT path evicts
	// the current k-th row when a rejected candidate ties it on every sort
	// key — the boundary row silently vanishes from the result.
	TopKHeapBoundary Fault = "generic.topk-heap-boundary"
)

// Durability faults, injected into the pager storage backend
// (internal/storage/pager). They are dormant unless a session runs with
// -storage=pager, and only the recovery-equivalence oracle — which crashes
// the database at a scheduled point and compares post-recovery state with
// the committed pre-crash state — can observe them. Registered under the
// SQLite home dialect (the pager is dialect-independent; campaigns enable
// them under any dialect).
const (
	// PagerLostFlush: Commit appends the WAL frames but skips the fsync,
	// so a statement is reported durably committed while its frames still
	// sit in the volatile write cache — a power cut silently loses
	// claimed-committed transactions.
	PagerLostFlush Fault = "pager.wal-lost-flush"
	// PagerTornPageAccept: recovery skips frame-checksum verification and
	// salvages the uncommitted WAL tail as an implicit commit, so a torn
	// or bit-flipped final write resurfaces as (corrupted) committed state
	// instead of being discarded.
	PagerTornPageAccept Fault = "pager.torn-page-accept"
	// PagerTruncatedReplay: recovery stops replaying the WAL after the
	// first commit frame, dropping every later committed transaction that
	// had not yet been checkpointed into the main database file.
	PagerTruncatedReplay Fault = "pager.wal-truncated-replay"
)

// Isolation faults, injected into the engine's transaction machinery
// (internal/engine txn state machine). They are dormant in single-session
// campaigns — every site requires an open transaction from one session
// overlapping statements from another — and only the serializability
// oracle, which executes interleaved multi-session histories and compares
// them against equivalent serial orders, can observe them. Registered
// under the SQLite home dialect (the txn machinery is dialect-independent;
// campaigns enable them under any dialect).
const (
	// TxnDirtyReadLeak: a read-only statement from a non-transactional
	// session skips the switch back to committed state and reads another
	// session's uncommitted working state — a classic dirty read.
	TxnDirtyReadLeak Fault = "engine.dirty-read-leak"
	// TxnLostUpdate: commit validation skips the write-write check (and
	// the eager write lock), so two overlapping transactions can both
	// commit writes to the same table and the later commit silently
	// clobbers the earlier one — a lost update.
	TxnLostUpdate Fault = "engine.lost-update"
	// TxnSnapshotSkewCommit: commit validation skips the read-set check,
	// degrading serializable optimistic concurrency to plain snapshot
	// isolation — overlapping transactions that read what the other wrote
	// both commit (write skew).
	TxnSnapshotSkewCommit Fault = "engine.snapshot-skew-commit"
	// TxnRollbackRestoreMiss: ROLLBACK restores the committed snapshot but
	// leaves the transaction's working version of its first written table
	// in place, so aborted writes leak into committed state.
	TxnRollbackRestoreMiss Fault = "engine.rollback-restore-miss"
)

// registry holds the metadata table.
var registry = map[Fault]Info{}

func register(i Info) {
	if _, dup := registry[i.ID]; dup {
		panic(fmt.Sprintf("faults: duplicate fault %q", i.ID))
	}
	registry[i.ID] = i
}

func init() {
	sq := dialect.SQLite
	my := dialect.MySQL
	pg := dialect.Postgres
	for _, i := range []Info{
		{PartialIndexNotNull, sq, ClassIndex, OracleContainment, true, "Listing 1", "partial index used for IS NOT <literal> via bogus implication"},
		{NocaseUniqueIndex, sq, ClassIndex, OracleContainment, true, "Listing 4", "NOCASE index dedups case-variant PK rows in WITHOUT ROWID table"},
		{RtrimCompare, sq, ClassIndex, OracleContainment, true, "Listing 5", "RTRIM collation equality wrong in index lookup"},
		{SkipScanDistinct, sq, ClassOptimization, OracleContainment, true, "Listing 6", "skip-scan drops rows under DISTINCT after ANALYZE"},
		{LikeAffinityOpt, sq, ClassOptimization, OracleContainment, true, "Listing 7", "LIKE optimization misfires on non-TEXT affinity"},
		{TextIntSubtract, sq, ClassTyping, OracleContainment, true, "Listing 2", "TEXT - huge int loses precision through float"},
		{RealPKCorrupt, sq, ClassCorruption, OracleError, false, "Listing 10", "UPDATE OR REPLACE on REAL PK corrupts database"},
		{ReindexUnique, sq, ClassMaintenance, OracleError, false, "§4.4", "REINDEX raises spurious UNIQUE constraint failure"},
		{DoubleQuoteIndex, sq, ClassSemantics, OracleContainment, true, "Listing 8", "double-quoted string in index rebinds to column after RENAME"},
		{CaseSensitiveLikePragma, sq, ClassMaintenance, OracleError, false, "Listing 9", "case_sensitive_like + VACUUM leaves malformed schema"},
		{IsNotNullOpt, sq, ClassOptimization, OracleContainment, true, "§4.4 class", "NOT(x IS NULL) rewritten to TRUE for indexed columns"},
		{CollateIndexOrder, sq, ClassIndex, OracleContainment, true, "§4.4 class", "collated index built in BINARY order misses range rows"},
		{AffinityCompare, sq, ClassTyping, OracleContainment, true, "§4.4 class", "constant side of comparison skips affinity conversion"},
		{RowidAliasCrash, sq, ClassCrash, OracleCrash, false, "§4.2 class", "rowid alias resolution crashes after RENAME COLUMN"},
		{RangeScanBoundary, sq, ClassIndex, OracleContainment, true, "§4.4 class", "index range scan drops rows on inclusive boundaries"},
		{StaleIndexAfterUpdate, sq, ClassIndex, OracleContainment, true, "§4.4 class", "UPDATE leaves index entries stale; index paths miss updated rows"},
		{PlannerCollationConfusion, sq, ClassIndex, OracleContainment, true, "§4.4 class", "planner uses an index whose collation mismatches the comparison"},
		{NullPartitionDrop, sq, ClassOptimization, OracleTLP, true, "NoREC/TLP class", "UNION ALL arm whose WHERE root is IS NULL returns no rows"},
		{UnionAllDedup, sq, ClassSemantics, OracleTLP, true, "NoREC/TLP class", "UNION ALL deduplicates its concatenation like UNION"},
		{AggEmptyGroup, sq, ClassSemantics, OracleTLP, true, "NoREC/TLP class", "aggregate over an empty filtered input returns a phantom value"},
		{NorecCountMismatch, sq, ClassOptimization, OracleNoREC, true, "NoREC/TLP class", "star-projection SELECT with WHERE drops its first matching row"},
		{HashJoinCollation, sq, ClassOptimization, OracleContainment, true, "§4.4 class", "hash join hashes NOCASE keys case-sensitively, dropping case-variant matches"},
		{HashJoinNullKey, sq, ClassOptimization, OracleTLP, true, "NoREC/TLP class", "hash join matches NULL keys spuriously in filtered queries"},
		{HashAggCollation, sq, ClassOptimization, OracleContainment, true, "§4.4 class", "hash aggregation folds TEXT group keys through the column collation, collapsing distinct groups"},
		{AggAccumulatorNullSkip, sq, ClassSemantics, OracleTLP, true, "NoREC/TLP class", "streaming SUM/AVG seeds its accumulator from a leading NULL instead of skipping it"},

		{MemoryEngineCast, my, ClassTyping, OracleContainment, true, "Listing 11", "MEMORY engine evaluates CAST AS UNSIGNED comparisons wrong"},
		{UnsignedCompare, my, ClassTyping, OracleContainment, true, "§4.5", "UNSIGNED column vs negative constant coerces the constant"},
		{NullSafeEqRange, my, ClassTyping, OracleContainment, true, "Listing 12", "<=> yields FALSE for out-of-range constants"},
		{DoubleNegation, my, ClassOptimization, OracleContainment, true, "Listing 13", "NOT(NOT x) folded to x for integers"},
		{SetOptionError, my, ClassMaintenance, OracleError, false, "Listing 3", "SET GLOBAL option fails with Incorrect arguments"},
		{CheckTableCrash, my, ClassCrash, OracleCrash, false, "Listing 14", "CHECK TABLE FOR UPGRADE crashes on expression index"},
		{TextDoubleBool, my, ClassTyping, OracleContainment, true, "§4.5", "small doubles in TEXT columns are FALSE in boolean context"},
		{RepairTableTruncate, my, ClassCorruption, OracleError, false, "§4.3 class", "REPAIR TABLE drops a row and corrupts the table"},
		{TinyintRangeClamp, my, ClassTyping, OracleContainment, true, "§4.5 class", "TINYINT comparisons clamp out-of-range constants"},

		{InheritanceGroupBy, pg, ClassSemantics, OracleContainment, true, "Listing 15", "GROUP BY collapses inherited rows sharing parent PK"},
		{StatsBitmapset, pg, ClassMaintenance, OracleError, false, "Listing 16", "extended stats + expression index → negative bitmapset member"},
		{IndexNullValue, pg, ClassIndex, OracleError, false, "Listing 17", "index built after UPDATE reports unexpected null value"},
		{VacuumOverflow, pg, ClassMaintenance, OracleError, false, "Listing 18", "VACUUM FULL fails with integer out of range"},
		{BoolIndexScan, pg, ClassIndex, OracleContainment, true, "§4.6 class", "partial boolean index consulted with inverted polarity"},
		{StrictCastCrash, pg, ClassCrash, OracleCrash, false, "§4.6 class", "planner crash on nested cast in index expression"},
		{LeftJoinDrop, pg, ClassSemantics, OracleContainment, true, "§4 class", "LEFT JOIN drops unmatched left rows"},
		{HashLeftJoinDrop, pg, ClassSemantics, OracleTLP, true, "§4 class", "hash LEFT JOIN drops unmatched preserved rows in filtered queries"},

		{WhereTrueDrop, sq, ClassOptimization, OracleContainment, true, "§4 class", "filter loop skips first matching row under OR of indexed column"},
		{DistinctCollation, sq, ClassSemantics, OracleContainment, true, "§4 class", "DISTINCT dedups case-insensitively on BINARY columns"},
		{JoinPredicatePushdown, my, ClassOptimization, OracleContainment, true, "§4 class", "predicate pushed across join filters wrong side"},
		{OrderByLimitDrop, pg, ClassOptimization, OracleContainment, true, "§4 class", "ORDER BY + LIMIT drops a row when sort key has NULL"},
		{VacuumCorrupt, sq, ClassCorruption, OracleError, false, "§4.4 class", "VACUUM corrupts the storage checksum"},
		{InsertVisibility, my, ClassSemantics, OracleContainment, true, "§4 class", "last inserted row invisible to next scan"},
		{TopKHeapBoundary, my, ClassOptimization, OracleContainment, true, "§4 class", "top-K ORDER BY/LIMIT evicts the k-th row when a rejected candidate ties on the sort key"},

		{PagerLostFlush, sq, ClassDurability, OracleRecovery, true, "§7 durability class", "Commit skips the WAL fsync; claimed-committed transactions vanish on crash"},
		{PagerTornPageAccept, sq, ClassDurability, OracleRecovery, true, "§7 durability class", "recovery skips checksum verification and salvages the torn WAL tail"},
		{PagerTruncatedReplay, sq, ClassDurability, OracleRecovery, true, "§7 durability class", "recovery stops after the first WAL commit frame, dropping later commits"},

		{TxnDirtyReadLeak, sq, ClassIsolation, OracleSerializability, true, "isolation class", "non-txn readers see another session's uncommitted working state"},
		{TxnLostUpdate, sq, ClassIsolation, OracleSerializability, true, "isolation class", "commit skips write-write validation; overlapping writers both commit"},
		{TxnSnapshotSkewCommit, sq, ClassIsolation, OracleSerializability, true, "isolation class", "commit skips read-set validation; write skew commits under SI"},
		{TxnRollbackRestoreMiss, sq, ClassIsolation, OracleSerializability, true, "isolation class", "ROLLBACK leaves the first written table's uncommitted version in place"},
	} {
		register(i)
	}
}

// Lookup returns the metadata for a fault.
func Lookup(f Fault) (Info, bool) {
	i, ok := registry[f]
	return i, ok
}

// All returns every registered fault, sorted by ID for determinism.
func All() []Info {
	out := make([]Info, 0, len(registry))
	for _, i := range registry {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ForDialect returns the faults whose home dialect is d, sorted by ID.
func ForDialect(d dialect.Dialect) []Info {
	var out []Info
	for _, i := range All() {
		if i.Dialect == d {
			out = append(out, i)
		}
	}
	return out
}

// Set is an enabled-fault set. The zero value has no faults enabled and is
// safe to use; a nil *Set behaves the same, so engine code can test
// injection sites unconditionally.
type Set struct {
	enabled map[Fault]bool
}

// NewSet returns a set with the given faults enabled.
func NewSet(fs ...Fault) *Set {
	s := &Set{enabled: make(map[Fault]bool, len(fs))}
	for _, f := range fs {
		s.enabled[f] = true
	}
	return s
}

// Has reports whether f is enabled. A nil set has nothing enabled.
func (s *Set) Has(f Fault) bool {
	if s == nil {
		return false
	}
	return s.enabled[f]
}

// Enable turns a fault on.
func (s *Set) Enable(f Fault) {
	if s.enabled == nil {
		s.enabled = map[Fault]bool{}
	}
	s.enabled[f] = true
}

// Disable turns a fault off.
func (s *Set) Disable(f Fault) { delete(s.enabled, f) }

// List returns the enabled faults, sorted.
func (s *Set) List() []Fault {
	if s == nil {
		return nil
	}
	out := make([]Fault, 0, len(s.enabled))
	for f := range s.enabled {
		out = append(out, f)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Empty reports whether no fault is enabled.
func (s *Set) Empty() bool { return s == nil || len(s.enabled) == 0 }
