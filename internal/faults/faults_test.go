package faults

import (
	"strings"
	"testing"

	"repro/internal/dialect"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 56 {
		t.Fatalf("registry has %d faults, want 56", len(all))
	}
	valid := map[Oracle]bool{
		OracleContainment: true, OracleError: true, OracleCrash: true,
		OracleNoREC: true, OracleTLP: true, OracleRecovery: true,
		OracleSerializability: true,
	}
	for _, i := range all {
		if i.ID == "" || i.Desc == "" || i.Paper == "" {
			t.Errorf("fault %q missing metadata: %+v", i.ID, i)
		}
		if !valid[i.Oracle] {
			t.Errorf("fault %q has unknown oracle %q", i.ID, i.Oracle)
		}
		// Logic bugs (wrong result sets) are exactly the ones result-set
		// oracles catch: containment for pivot drops, NoREC/TLP for
		// whole-result-set deviations, recovery for wrong durable state.
		// Error/crash faults are not logic.
		logicOracle := i.Oracle == OracleContainment || i.Oracle == OracleNoREC ||
			i.Oracle == OracleTLP || i.Oracle == OracleRecovery ||
			i.Oracle == OracleSerializability
		if i.Logic != logicOracle {
			t.Errorf("fault %q: Logic=%v inconsistent with oracle %q", i.ID, i.Logic, i.Oracle)
		}
		if !strings.Contains(string(i.ID), ".") {
			t.Errorf("fault id %q should be namespaced", i.ID)
		}
	}
}

func TestDialectPartition(t *testing.T) {
	total := 0
	for _, d := range dialect.All {
		total += len(ForDialect(d))
	}
	if total != len(All()) {
		t.Errorf("dialect partition covers %d of %d faults", total, len(All()))
	}
	// The paper found most bugs in SQLite; the corpus mirrors that skew.
	if len(ForDialect(dialect.SQLite)) <= len(ForDialect(dialect.Postgres)) {
		t.Errorf("SQLite corpus should be the largest")
	}
}

func TestOracleMix(t *testing.T) {
	counts := map[Oracle]int{}
	for _, i := range All() {
		counts[i.Oracle]++
	}
	// Table 3 shape: containment > error > crash.
	if !(counts[OracleContainment] > counts[OracleError] && counts[OracleError] > counts[OracleCrash]) {
		t.Errorf("oracle mix %v should follow containment > error > crash", counts)
	}
	if counts[OracleCrash] == 0 {
		t.Error("corpus needs at least one crash fault")
	}
}

func TestSetSemantics(t *testing.T) {
	var nilSet *Set
	if nilSet.Has(PartialIndexNotNull) {
		t.Error("nil set should have nothing enabled")
	}
	if !nilSet.Empty() || len(nilSet.List()) != 0 {
		t.Error("nil set should be empty")
	}
	s := NewSet(PartialIndexNotNull, DoubleNegation)
	if !s.Has(PartialIndexNotNull) || !s.Has(DoubleNegation) || s.Has(RtrimCompare) {
		t.Error("NewSet enablement wrong")
	}
	s.Disable(DoubleNegation)
	if s.Has(DoubleNegation) {
		t.Error("Disable failed")
	}
	var zero Set
	zero.Enable(RtrimCompare)
	if !zero.Has(RtrimCompare) {
		t.Error("Enable on zero Set failed")
	}
	if got := s.List(); len(got) != 1 || got[0] != PartialIndexNotNull {
		t.Errorf("List = %v", got)
	}
}

func TestLookup(t *testing.T) {
	i, ok := Lookup(CheckTableCrash)
	if !ok || i.Dialect != dialect.MySQL || i.Oracle != OracleCrash {
		t.Errorf("Lookup(CheckTableCrash) = %+v, %v", i, ok)
	}
	if _, ok := Lookup("nope.nothing"); ok {
		t.Error("unknown fault should not resolve")
	}
}
