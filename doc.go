// Package repro reproduces "Testing Database Engines via Pivoted Query
// Synthesis" (Rigger & Su, OSDI 2020) as a self-contained Go system: an
// embedded SQL engine substrate with three dialect profiles and an
// injectable-bug corpus, plus the PQS testing stack (generator, oracle
// interpreter, rectifier, containment/error/crash oracles, reducer, and
// campaign runner) and two baselines (a SQLsmith-style fuzzer and a
// RAGS-style differential tester).
//
// Testing oracles are pluggable (internal/oracle): beside PQS's pivot
// containment, the NoREC and TLP metamorphic oracles from the same
// research lineage validate whole result sets — NoREC compares an
// optimized WHERE against the unoptimized predicate projection, TLP
// recombines the p / NOT p / p IS NULL partitions with UNION ALL — and
// catch result-set and aggregate faults PQS is structurally blind to.
// Campaigns select oracles with `sqlancer-go -oracle=pqs,tlp,norec`
// (round-robin across databases); dbshell's `.oracle <name>` runs
// one-shot checks. See DESIGN.md "Metamorphic oracles".
//
// The tester stack talks to the database under test only through the
// backend-agnostic SUT boundary (internal/sut): open a database with
//
//	db, err := sut.Open("memengine", sut.Session{Dialect: dialect.SQLite})
//
// and swap "memengine" for "wire" to drive the same engine through
// database/sql instead. A shared conformance suite holds the two backends
// to identical behaviour.
//
// The engine evaluates query predicates through compiled expression
// programs (slot-bound closures, internal/eval's Compile); the
// Session.NoCompile option — `-no-compile` on the CLIs — restores the
// tree-walk interpreter for A/B runs. See DESIGN.md "Compiled expression
// programs".
//
// Joins pick a per-level strategy — hash join, index lookup, or nested
// loop — from estimated cardinalities, with collation/affinity-correct
// key normalization and full ON re-verification on every candidate pair;
// EXPLAIN QUERY PLAN surfaces the choice. The Session.NoHashJoin option —
// `-no-hashjoin` on the CLIs, DSN `hashjoin=off` — pins every level to
// the nested loop, and three injectable hash-join faults ride inside the
// ablated code. See DESIGN.md "Join execution & strategy selection".
//
// Databases can live on a durable storage backend
// (internal/storage/pager): a page file plus write-ahead log with
// checksummed pages, crash recovery on open, and simulated-power-cut
// fault injection over deterministic, seed-replayable crash plans. The
// `recovery` oracle crashes databases mid-commit and checks that
// recovery restores exactly the committed (or atomically pre-statement)
// state; three injectable durability faults give it ground truth. Select
// it with `sqlancer-go -storage pager -oracle recovery`; dbshell's
// `.storage` prints the pager's work counters. See DESIGN.md "Durable
// storage & crash recovery".
//
// Sessions support real transactions: BEGIN stages writes against a
// private copy-on-write snapshot, COMMIT validates the transaction's
// read and write sets against concurrent commits (first-committer-wins,
// surfacing retryable conflict errors) and merges, ROLLBACK discards.
// The `serializability` oracle opens several sessions per database
// (`-sessions` fixes the count), executes generated transaction scripts
// under a seeded deterministic interleaving, and requires every history
// to match an equivalent serial order of its committed units; four
// injectable isolation faults (dirty read, lost update, write skew,
// rollback leak) are visible only to it. dbshell's `.begin`, `.commit`,
// and `.rollback` drive a transaction interactively. See DESIGN.md
// "Transactions & serializability checking".
//
// Campaigns execute on a shared work-stealing scheduler
// (runner.Scheduler) over pooled, resettable engine lifecycles: the
// engine's Reset/Snapshot facilities and sut.Pool let one engine serve
// many database lifecycles, and a whole fault corpus sweeps through one
// worker pool (`sqlancer-go -corpus`). Detections report the canonical
// lowest seed, so campaign results are identical at any worker count.
// See DESIGN.md "Campaign scheduler & engine lifecycle".
//
// The root package holds the benchmark harness (bench_test.go) that
// regenerates every table and figure of the paper's evaluation; the
// implementation lives under internal/ (see DESIGN.md for the map).
package repro
