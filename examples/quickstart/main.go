// Quickstart: reproduce the paper's Listing 1 end to end.
//
// We open a SQLite-profile database under test with the Listing 1 bug
// injected (a partial index incorrectly used for `IS NOT <literal>`
// predicates), run the exact statements from the paper, and then let PQS
// find the same bug class automatically from scratch. The database is
// opened through the backend-agnostic SUT boundary — swap "memengine"
// for "wire" to drive the same engine through database/sql instead.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sut"
	_ "repro/internal/sut/memengine"
	_ "repro/internal/sut/wire"
)

func main() {
	// --- Part 1: the paper's Listing 1, verbatim -------------------------
	fs := faults.NewSet(faults.PartialIndexNotNull)
	db, err := sut.Open("memengine", sut.Session{Dialect: dialect.SQLite, Faults: fs})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	setup := `
		CREATE TABLE t0(c0);
		CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;
		INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);`
	if _, err := db.Exec(setup); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Listing 1 on the faulty engine returned %d rows (expected 4):\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  c0 = %s\n", row[0])
	}
	fmt.Println("The NULL row is missing: NULL IS NOT 1 evaluates to TRUE, but the")
	fmt.Println("partial index i0 excludes NULLs and the planner wrongly used it.")
	fmt.Println()

	// --- Part 2: PQS finds the bug automatically -------------------------
	fmt.Println("Hunting the same bug with Pivoted Query Synthesis...")
	for seed := int64(1); ; seed++ {
		tester := core.NewTester(core.Config{
			Dialect: dialect.SQLite,
			Seed:    seed,
			Faults:  fs,
		})
		bug, err := tester.RunDatabase()
		if err != nil {
			log.Fatal(err)
		}
		if bug == nil {
			continue
		}
		fmt.Printf("detected by the %s oracle after %d random databases:\n", bug.Oracle, seed)
		fmt.Printf("  %s\n", bug.Message)
		fmt.Println("reproduction trace:")
		for _, sql := range bug.Trace {
			fmt.Printf("  %s;\n", sql)
		}
		return
	}
}
