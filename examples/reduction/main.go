// Reduction: detect a bug with PQS and then shrink its reproduction trace
// with the statement reducer, showing before/after — the pipeline that
// produced the paper's 3.71-statement average test cases (Figure 2).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/reduce"
)

func main() {
	faultName := flag.String("fault", string(faults.SkipScanDistinct), "fault to hunt and reduce")
	flag.Parse()

	f := faults.Fault(*faultName)
	info, ok := faults.Lookup(f)
	if !ok {
		log.Fatalf("unknown fault %q", *faultName)
	}
	fs := faults.NewSet(f)

	var bug *core.Bug
	for seed := int64(1); bug == nil; seed++ {
		tester := core.NewTester(core.Config{Dialect: info.Dialect, Seed: seed, Faults: fs})
		b, err := tester.RunDatabase()
		if err != nil {
			log.Fatal(err)
		}
		bug = b
	}

	fmt.Printf("detected %s via the %s oracle:\n  %s\n\n", f, bug.Oracle, bug.Message)
	fmt.Printf("original trace (%d statements):\n", len(bug.Trace))
	for _, sql := range bug.Trace {
		fmt.Printf("  %s;\n", sql)
	}

	reduced := reduce.BugFully(bug, info.Dialect, fs)
	fmt.Printf("\nreduced trace (%d statements):\n", len(reduced))
	for _, sql := range reduced {
		fmt.Printf("  %s;\n", sql)
	}
	fmt.Printf("\n%d -> %d statements (the paper's reduced cases averaged 3.71 LOC, max 8)\n",
		len(bug.Trace), len(reduced))
}
