// Bughunt: run campaigns over the full injected-fault corpus in every
// dialect — each fault under the testing oracle its registry entry routes
// to (PQS, TLP, or NoREC) — printing a live Table 2/3-style summary. This
// is the example analogue of the paper's three-month testing campaign,
// compressed into a deterministic sweep with known ground truth.
package main

import (
	"flag"
	"fmt"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/runner"
)

func main() {
	budget := flag.Int("budget", 2000, "database budget per fault campaign")
	flag.Parse()

	perOracle := map[dialect.Dialect]map[faults.Oracle]int{}
	detected := map[dialect.Dialect]int{}
	missed := map[dialect.Dialect]int{}

	// One work-stealing sweep per dialect: every fault campaign multiplexes
	// over a shared scheduler pool of pooled, resettable engine sessions
	// instead of standing up a fresh worker pool per fault.
	for _, d := range dialect.All {
		perOracle[d] = map[faults.Oracle]int{}
		fmt.Printf("== %s ==\n", d.DisplayName())
		for _, res := range runner.RunCorpus(d, *budget, 1, true) {
			info, _ := faults.Lookup(res.Campaign.Fault)
			if res.Detected {
				detected[d]++
				perOracle[d][res.Bug.Oracle]++
				fmt.Printf("  %-40s found by %-6s (%s verdict) at seed %4d, reduced to %d stmts\n",
					info.ID, res.Bug.DetectedBy, res.Bug.Oracle, res.Seed, len(res.Reduced))
			} else {
				missed[d]++
				fmt.Printf("  %-40s MISSED in %d dbs\n", info.ID, res.Databases)
			}
		}
	}

	t2 := &report.Table{
		Title:   "Bug-report summary (Table 2 analogue: detected ≈ fixed/verified)",
		Headers: []string{"DBMS", "Faults", "Detected", "Missed"},
	}
	t3 := &report.Table{
		Title:   "Detections per oracle (Table 3 analogue)",
		Headers: []string{"DBMS", "Contains", "Error", "SEGFAULT", "TLP", "NoREC"},
	}
	for _, d := range dialect.All {
		total := len(faults.ForDialect(d))
		t2.AddRow(d.DisplayName(), total, detected[d], missed[d])
		t3.AddRow(d.DisplayName(), perOracle[d][faults.OracleContainment],
			perOracle[d][faults.OracleError], perOracle[d][faults.OracleCrash],
			perOracle[d][faults.OracleTLP], perOracle[d][faults.OracleNoREC])
	}
	fmt.Println()
	fmt.Println(t2.Render())
	fmt.Println(t3.Render())
}
